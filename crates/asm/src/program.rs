//! The assembled program image with symbol and section metadata.

use std::fmt;

use vortex_isa::{Instr, INSTR_BYTES};

/// A named address in the program (bound label).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Absolute address.
    pub addr: u32,
}

/// A semantic code section: a contiguous, named address range.
///
/// Sections are purely metadata — the paper's Figure 1 tags instruction
/// addresses "with different semantic sections of the code" to make the
/// execution phases visible; this is that tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// Section name (e.g. `"dispatch"`, `"body"`, `"exit"`).
    pub name: String,
    /// First address of the section (inclusive).
    pub start: u32,
    /// One past the last address of the section (exclusive).
    pub end: u32,
}

/// An assembled, relocated code image.
///
/// Produced by [`Assembler::assemble`](crate::Assembler::assemble). The
/// image stores both the raw little-endian words and the predecoded
/// [`Instr`]s (the simulator executes the latter; they are guaranteed to
/// agree).
#[derive(Clone, Debug)]
pub struct Program {
    base: u32,
    words: Vec<u32>,
    instrs: Vec<Instr>,
    symbols: Vec<Symbol>,
    sections: Vec<Section>,
}

impl Program {
    pub(crate) fn new(
        base: u32,
        words: Vec<u32>,
        instrs: Vec<Instr>,
        symbols: Vec<Symbol>,
        sections: Vec<Section>,
    ) -> Self {
        debug_assert_eq!(words.len(), instrs.len());
        Program { base, words, instrs, symbols, sections }
    }

    /// The load/entry address of the program (execution starts here).
    pub fn entry(&self) -> u32 {
        self.base
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// One past the last code address.
    pub fn end(&self) -> u32 {
        self.base + (self.words.len() as u32) * INSTR_BYTES
    }

    /// The raw instruction words, in program order.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// The predecoded instructions, in program order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The instruction at an absolute address, if it lies inside the image
    /// and is word-aligned.
    pub fn instr_at(&self, addr: u32) -> Option<Instr> {
        if addr < self.base || !addr.is_multiple_of(INSTR_BYTES) {
            return None;
        }
        self.instrs.get(((addr - self.base) / INSTR_BYTES) as usize).copied()
    }

    /// All bound symbols, sorted by address.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Resolves a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.iter().find(|s| s.name == name).map(|s| s.addr)
    }

    /// All semantic sections, sorted by start address.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// The semantic section covering an address, if any.
    pub fn section_at(&self, addr: u32) -> Option<&Section> {
        self.sections.iter().find(|s| s.start <= addr && addr < s.end)
    }

    /// Renders a full disassembly listing with symbols and section headers.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            let addr = self.base + (i as u32) * INSTR_BYTES;
            if let Some(sec) = self.sections.iter().find(|s| s.start == addr) {
                out.push_str(&format!("; section {}\n", sec.name));
            }
            for sym in self.symbols.iter().filter(|s| s.addr == addr) {
                out.push_str(&format!("{}:\n", sym.name));
            }
            out.push_str(&format!("  {addr:#010x}:  {:08x}  {instr}\n", self.words[i]));
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.listing())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_isa::{reg, AluImmOp};

    fn sample() -> Program {
        let instrs = vec![
            Instr::OpImm { op: AluImmOp::Add, rd: reg::T0, rs1: reg::ZERO, imm: 1 },
            Instr::Tmc { rs1: reg::ZERO },
        ];
        let words = instrs.iter().map(|&i| vortex_isa::encode(i).unwrap()).collect();
        Program::new(
            0x8000_0000,
            words,
            instrs,
            vec![Symbol { name: "entry".into(), addr: 0x8000_0000 }],
            vec![Section { name: "body".into(), start: 0x8000_0000, end: 0x8000_0008 }],
        )
    }

    #[test]
    fn address_lookup() {
        let p = sample();
        assert!(p.instr_at(0x8000_0000).is_some());
        assert!(p.instr_at(0x8000_0004).is_some());
        assert!(p.instr_at(0x8000_0008).is_none());
        assert!(p.instr_at(0x8000_0002).is_none()); // misaligned
        assert!(p.instr_at(0x7FFF_FFFC).is_none()); // below base
        assert_eq!(p.end(), 0x8000_0008);
    }

    #[test]
    fn symbol_and_section_lookup() {
        let p = sample();
        assert_eq!(p.symbol("entry"), Some(0x8000_0000));
        assert_eq!(p.symbol("missing"), None);
        assert_eq!(p.section_at(0x8000_0004).unwrap().name, "body");
        assert!(p.section_at(0x8000_0008).is_none());
    }

    #[test]
    fn listing_contains_disassembly() {
        let listing = sample().listing();
        assert!(listing.contains("addi t0, zero, 1"));
        assert!(listing.contains("entry:"));
        assert!(listing.contains("; section body"));
    }
}
