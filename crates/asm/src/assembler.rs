//! The [`Assembler`] builder: mnemonics, labels, pseudo-instructions.

use std::error::Error;
use std::fmt;

use vortex_isa::{
    encode, AluImmOp, AluOp, BranchOp, Csr, CsrOp, CsrSrc, EncodeError, FReg, FmaOp, FpBinOp,
    FpCmpOp, Instr, LoadWidth, Reg, StoreWidth, VoteOp, INSTR_BYTES,
};

use crate::program::{Program, Section, Symbol};

/// A code label, created with [`Assembler::label`] and placed with
/// [`Assembler::bind`]. Labels may be referenced before they are bound;
/// offsets are fixed up when [`Assembler::assemble`] runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Debug)]
struct LabelState {
    name: String,
    addr: Option<u32>,
}

/// How a recorded label reference patches instructions at resolution time.
#[derive(Copy, Clone, Debug)]
enum RefKind {
    /// Patch the PC-relative offset of a branch/jal/split at the index.
    PcRel(usize),
    /// Patch a `lui`+`addi` pair with the label's absolute address.
    AbsPair { lui: usize, addi: usize },
}

/// An error raised while assembling a program.
#[derive(Debug)]
pub enum AsmError {
    /// A referenced label was never bound to an address.
    UnboundLabel {
        /// The label's name.
        name: String,
    },
    /// A label was bound twice.
    LabelRebound {
        /// The label's name.
        name: String,
    },
    /// An instruction could not be encoded (immediate/offset out of range).
    Encode {
        /// Address of the offending instruction.
        addr: u32,
        /// The encoding failure.
        source: EncodeError,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { name } => write!(f, "label `{name}` was never bound"),
            AsmError::LabelRebound { name } => write!(f, "label `{name}` bound twice"),
            AsmError::Encode { addr, source } => {
                write!(f, "cannot encode instruction at {addr:#010x}: {source}")
            }
        }
    }
}

impl Error for AsmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AsmError::Encode { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A two-pass assembler producing a [`Program`].
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct Assembler {
    base: u32,
    instrs: Vec<Instr>,
    labels: Vec<LabelState>,
    refs: Vec<(RefKind, Label)>,
    sections: Vec<(u32, String)>,
}

impl Assembler {
    /// Creates an assembler whose first instruction will live at `base`.
    pub fn new(base: u32) -> Self {
        Assembler {
            base,
            instrs: Vec::new(),
            labels: Vec::new(),
            refs: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// The address the next emitted instruction will occupy.
    pub fn pc(&self) -> u32 {
        self.base + (self.instrs.len() as u32) * INSTR_BYTES
    }

    /// Creates a new (unbound) label. The name is used for symbols and
    /// error messages; it does not need to be unique.
    pub fn label(&mut self, name: &str) -> Label {
        self.labels.push(LabelState { name: name.to_owned(), addr: None });
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current [`pc`](Self::pc), making it a symbol.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::LabelRebound`] if the label is already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), AsmError> {
        let pc = self.pc();
        let state = &mut self.labels[label.0];
        if state.addr.is_some() {
            return Err(AsmError::LabelRebound { name: state.name.clone() });
        }
        state.addr = Some(pc);
        Ok(())
    }

    /// Creates a label and immediately binds it at the current position.
    pub fn here(&mut self, name: &str) -> Label {
        let l = self.label(name);
        self.bind(l).expect("fresh label cannot be rebound");
        l
    }

    /// Starts a named semantic section at the current position. The section
    /// extends until the next `section` call (or the end of the program).
    pub fn section(&mut self, name: &str) {
        self.sections.push((self.pc(), name.to_owned()));
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) {
        self.instrs.push(instr);
    }

    fn emit_ref(&mut self, instr: Instr, label: Label) {
        self.refs.push((RefKind::PcRel(self.instrs.len()), label));
        self.instrs.push(instr);
    }

    /// `la rd, label` — loads a label's **absolute** address with a
    /// `lui`+`addi` pair, patched when the label resolves.
    pub fn la_label(&mut self, rd: Reg, label: Label) {
        let lui = self.instrs.len();
        self.instrs.push(Instr::Lui { rd, imm: 0 });
        let addi = self.instrs.len();
        self.instrs.push(Instr::OpImm { op: AluImmOp::Add, rd, rs1: rd, imm: 0 });
        self.refs.push((RefKind::AbsPair { lui, addi }, label));
    }

    /// Resolves label references, validates every encoding and produces the
    /// final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if any referenced label has no
    /// address, or [`AsmError::Encode`] if an instruction's immediate or
    /// offset does not fit its encoding (e.g. a branch spanning > ±4 KiB).
    pub fn assemble(self) -> Result<Program, AsmError> {
        let Assembler { base, mut instrs, labels, refs, sections } = self;
        for (kind, label) in refs {
            let state = &labels[label.0];
            let target =
                state.addr.ok_or_else(|| AsmError::UnboundLabel { name: state.name.clone() })?;
            match kind {
                RefKind::PcRel(idx) => {
                    let pc = base + (idx as u32) * INSTR_BYTES;
                    let offset = target.wrapping_sub(pc) as i32;
                    match &mut instrs[idx] {
                        Instr::Branch { offset: o, .. }
                        | Instr::Jal { offset: o, .. }
                        | Instr::Split { offset: o, .. } => *o = offset,
                        other => {
                            unreachable!("label reference on non-control instruction {other}")
                        }
                    }
                }
                RefKind::AbsPair { lui, addi } => {
                    let value = target as i32;
                    let hi = value.wrapping_add(0x800) & !0xFFF;
                    let lo = value.wrapping_sub(hi);
                    match &mut instrs[lui] {
                        Instr::Lui { imm, .. } => *imm = hi,
                        other => unreachable!("AbsPair hi patch on {other}"),
                    }
                    match &mut instrs[addi] {
                        Instr::OpImm { imm, .. } => *imm = lo,
                        other => unreachable!("AbsPair lo patch on {other}"),
                    }
                }
            }
        }
        let mut words = Vec::with_capacity(instrs.len());
        for (i, &instr) in instrs.iter().enumerate() {
            let addr = base + (i as u32) * INSTR_BYTES;
            let word = encode(instr).map_err(|source| AsmError::Encode { addr, source })?;
            words.push(word);
        }
        let end = base + (instrs.len() as u32) * INSTR_BYTES;
        let mut symbols: Vec<Symbol> = labels
            .into_iter()
            .filter_map(|l| l.addr.map(|addr| Symbol { name: l.name, addr }))
            .collect();
        symbols.sort_by_key(|s| s.addr);
        let mut secs = Vec::with_capacity(sections.len());
        for (i, (start, name)) in sections.iter().enumerate() {
            let sec_end = sections.get(i + 1).map_or(end, |(s, _)| *s);
            secs.push(Section { name: name.clone(), start: *start, end: sec_end });
        }
        Ok(Program::new(base, words, instrs, symbols, secs))
    }

    // ---- RV32I register-register ----------------------------------------

    /// `add rd, rs1, rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op { op: AluOp::Add, rd, rs1, rs2 });
    }
    /// `sub rd, rs1, rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op { op: AluOp::Sub, rd, rs1, rs2 });
    }
    /// `sll rd, rs1, rs2`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op { op: AluOp::Sll, rd, rs1, rs2 });
    }
    /// `slt rd, rs1, rs2`
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op { op: AluOp::Slt, rd, rs1, rs2 });
    }
    /// `sltu rd, rs1, rs2`
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op { op: AluOp::Sltu, rd, rs1, rs2 });
    }
    /// `xor rd, rs1, rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op { op: AluOp::Xor, rd, rs1, rs2 });
    }
    /// `srl rd, rs1, rs2`
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op { op: AluOp::Srl, rd, rs1, rs2 });
    }
    /// `sra rd, rs1, rs2`
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op { op: AluOp::Sra, rd, rs1, rs2 });
    }
    /// `or rd, rs1, rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op { op: AluOp::Or, rd, rs1, rs2 });
    }
    /// `and rd, rs1, rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op { op: AluOp::And, rd, rs1, rs2 });
    }

    // ---- M extension -----------------------------------------------------

    /// `mul rd, rs1, rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op { op: AluOp::Mul, rd, rs1, rs2 });
    }
    /// `mulh rd, rs1, rs2`
    pub fn mulh(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op { op: AluOp::Mulh, rd, rs1, rs2 });
    }
    /// `mulhsu rd, rs1, rs2`
    pub fn mulhsu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op { op: AluOp::Mulhsu, rd, rs1, rs2 });
    }
    /// `mulhu rd, rs1, rs2`
    pub fn mulhu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op { op: AluOp::Mulhu, rd, rs1, rs2 });
    }
    /// `div rd, rs1, rs2`
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op { op: AluOp::Div, rd, rs1, rs2 });
    }
    /// `divu rd, rs1, rs2`
    pub fn divu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op { op: AluOp::Divu, rd, rs1, rs2 });
    }
    /// `rem rd, rs1, rs2`
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op { op: AluOp::Rem, rd, rs1, rs2 });
    }
    /// `remu rd, rs1, rs2`
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op { op: AluOp::Remu, rd, rs1, rs2 });
    }

    // ---- RV32I register-immediate ----------------------------------------

    /// `addi rd, rs1, imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::OpImm { op: AluImmOp::Add, rd, rs1, imm });
    }
    /// `slti rd, rs1, imm`
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::OpImm { op: AluImmOp::Slt, rd, rs1, imm });
    }
    /// `sltiu rd, rs1, imm`
    pub fn sltiu(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::OpImm { op: AluImmOp::Sltu, rd, rs1, imm });
    }
    /// `xori rd, rs1, imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::OpImm { op: AluImmOp::Xor, rd, rs1, imm });
    }
    /// `ori rd, rs1, imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::OpImm { op: AluImmOp::Or, rd, rs1, imm });
    }
    /// `andi rd, rs1, imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::OpImm { op: AluImmOp::And, rd, rs1, imm });
    }
    /// `slli rd, rs1, shamt`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: i32) {
        self.emit(Instr::OpImm { op: AluImmOp::Sll, rd, rs1, imm: shamt });
    }
    /// `srli rd, rs1, shamt`
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: i32) {
        self.emit(Instr::OpImm { op: AluImmOp::Srl, rd, rs1, imm: shamt });
    }
    /// `srai rd, rs1, shamt`
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: i32) {
        self.emit(Instr::OpImm { op: AluImmOp::Sra, rd, rs1, imm: shamt });
    }

    // ---- Upper immediates --------------------------------------------------

    /// `lui rd, imm` (`imm` is the already-shifted 32-bit value).
    pub fn lui(&mut self, rd: Reg, imm: i32) {
        self.emit(Instr::Lui { rd, imm });
    }
    /// `auipc rd, imm`
    pub fn auipc(&mut self, rd: Reg, imm: i32) {
        self.emit(Instr::Auipc { rd, imm });
    }

    // ---- Memory ------------------------------------------------------------

    /// `lb rd, offset(rs1)`
    pub fn lb(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Load { width: LoadWidth::Byte, rd, rs1, offset });
    }
    /// `lh rd, offset(rs1)`
    pub fn lh(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Load { width: LoadWidth::Half, rd, rs1, offset });
    }
    /// `lw rd, offset(rs1)`
    pub fn lw(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Load { width: LoadWidth::Word, rd, rs1, offset });
    }
    /// `lbu rd, offset(rs1)`
    pub fn lbu(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Load { width: LoadWidth::ByteU, rd, rs1, offset });
    }
    /// `lhu rd, offset(rs1)`
    pub fn lhu(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Load { width: LoadWidth::HalfU, rd, rs1, offset });
    }
    /// `sb rs2, offset(rs1)`
    pub fn sb(&mut self, rs2: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Store { width: StoreWidth::Byte, rs2, rs1, offset });
    }
    /// `sh rs2, offset(rs1)`
    pub fn sh(&mut self, rs2: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Store { width: StoreWidth::Half, rs2, rs1, offset });
    }
    /// `sw rs2, offset(rs1)`
    pub fn sw(&mut self, rs2: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Store { width: StoreWidth::Word, rs2, rs1, offset });
    }

    // ---- Control flow --------------------------------------------------------

    /// `jal rd, label`
    pub fn jal(&mut self, rd: Reg, label: Label) {
        self.emit_ref(Instr::Jal { rd, offset: 0 }, label);
    }
    /// `jalr rd, offset(rs1)`
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, offset: i32) {
        self.emit(Instr::Jalr { rd, rs1, offset });
    }

    fn branch(&mut self, op: BranchOp, rs1: Reg, rs2: Reg, label: Label) {
        self.emit_ref(Instr::Branch { op, rs1, rs2, offset: 0 }, label);
    }

    /// `beq rs1, rs2, label`
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchOp::Eq, rs1, rs2, label);
    }
    /// `bne rs1, rs2, label`
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchOp::Ne, rs1, rs2, label);
    }
    /// `blt rs1, rs2, label`
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchOp::Lt, rs1, rs2, label);
    }
    /// `bge rs1, rs2, label`
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchOp::Ge, rs1, rs2, label);
    }
    /// `bltu rs1, rs2, label`
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchOp::Ltu, rs1, rs2, label);
    }
    /// `bgeu rs1, rs2, label`
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchOp::Geu, rs1, rs2, label);
    }

    // ---- System ---------------------------------------------------------------

    /// `fence` (no-op in the in-order simulator).
    pub fn fence(&mut self) {
        self.emit(Instr::Fence);
    }
    /// `ecall`
    pub fn ecall(&mut self) {
        self.emit(Instr::Ecall);
    }
    /// `ebreak`
    pub fn ebreak(&mut self) {
        self.emit(Instr::Ebreak);
    }

    /// `csrrw rd, csr, rs1`
    pub fn csrrw(&mut self, rd: Reg, csr: Csr, rs1: Reg) {
        self.emit(Instr::Csr { op: CsrOp::ReadWrite, rd, src: CsrSrc::Reg(rs1), csr });
    }
    /// `csrrs rd, csr, rs1`
    pub fn csrrs(&mut self, rd: Reg, csr: Csr, rs1: Reg) {
        self.emit(Instr::Csr { op: CsrOp::ReadSet, rd, src: CsrSrc::Reg(rs1), csr });
    }
    /// `csrrc rd, csr, rs1`
    pub fn csrrc(&mut self, rd: Reg, csr: Csr, rs1: Reg) {
        self.emit(Instr::Csr { op: CsrOp::ReadClear, rd, src: CsrSrc::Reg(rs1), csr });
    }
    /// `csrr rd, csr` — pseudo for `csrrs rd, csr, zero`.
    pub fn csrr(&mut self, rd: Reg, csr: Csr) {
        self.csrrs(rd, csr, vortex_isa::reg::ZERO);
    }

    // ---- F extension -------------------------------------------------------------

    /// `flw rd, offset(rs1)`
    pub fn flw(&mut self, rd: FReg, offset: i32, rs1: Reg) {
        self.emit(Instr::Flw { rd, rs1, offset });
    }
    /// `fsw rs2, offset(rs1)`
    pub fn fsw(&mut self, rs2: FReg, offset: i32, rs1: Reg) {
        self.emit(Instr::Fsw { rs2, rs1, offset });
    }
    /// `fadd.s rd, rs1, rs2`
    pub fn fadd_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) {
        self.emit(Instr::FpOp { op: FpBinOp::Add, rd, rs1, rs2 });
    }
    /// `fsub.s rd, rs1, rs2`
    pub fn fsub_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) {
        self.emit(Instr::FpOp { op: FpBinOp::Sub, rd, rs1, rs2 });
    }
    /// `fmul.s rd, rs1, rs2`
    pub fn fmul_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) {
        self.emit(Instr::FpOp { op: FpBinOp::Mul, rd, rs1, rs2 });
    }
    /// `fdiv.s rd, rs1, rs2`
    pub fn fdiv_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) {
        self.emit(Instr::FpOp { op: FpBinOp::Div, rd, rs1, rs2 });
    }
    /// `fsqrt.s rd, rs1`
    pub fn fsqrt_s(&mut self, rd: FReg, rs1: FReg) {
        self.emit(Instr::FpSqrt { rd, rs1 });
    }
    /// `fsgnj.s rd, rs1, rs2`
    pub fn fsgnj_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) {
        self.emit(Instr::FpOp { op: FpBinOp::SgnJ, rd, rs1, rs2 });
    }
    /// `fsgnjn.s rd, rs1, rs2`
    pub fn fsgnjn_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) {
        self.emit(Instr::FpOp { op: FpBinOp::SgnJN, rd, rs1, rs2 });
    }
    /// `fsgnjx.s rd, rs1, rs2`
    pub fn fsgnjx_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) {
        self.emit(Instr::FpOp { op: FpBinOp::SgnJX, rd, rs1, rs2 });
    }
    /// `fmin.s rd, rs1, rs2`
    pub fn fmin_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) {
        self.emit(Instr::FpOp { op: FpBinOp::Min, rd, rs1, rs2 });
    }
    /// `fmax.s rd, rs1, rs2`
    pub fn fmax_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) {
        self.emit(Instr::FpOp { op: FpBinOp::Max, rd, rs1, rs2 });
    }
    /// `fmadd.s rd, rs1, rs2, rs3` — `rd = rs1*rs2 + rs3`
    pub fn fmadd_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg, rs3: FReg) {
        self.emit(Instr::FpFma { op: FmaOp::MAdd, rd, rs1, rs2, rs3 });
    }
    /// `fmsub.s rd, rs1, rs2, rs3` — `rd = rs1*rs2 - rs3`
    pub fn fmsub_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg, rs3: FReg) {
        self.emit(Instr::FpFma { op: FmaOp::MSub, rd, rs1, rs2, rs3 });
    }
    /// `fnmsub.s rd, rs1, rs2, rs3` — `rd = -(rs1*rs2) + rs3`
    pub fn fnmsub_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg, rs3: FReg) {
        self.emit(Instr::FpFma { op: FmaOp::NMSub, rd, rs1, rs2, rs3 });
    }
    /// `fnmadd.s rd, rs1, rs2, rs3` — `rd = -(rs1*rs2) - rs3`
    pub fn fnmadd_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg, rs3: FReg) {
        self.emit(Instr::FpFma { op: FmaOp::NMAdd, rd, rs1, rs2, rs3 });
    }
    /// `feq.s rd, rs1, rs2`
    pub fn feq_s(&mut self, rd: Reg, rs1: FReg, rs2: FReg) {
        self.emit(Instr::FpCmp { op: FpCmpOp::Eq, rd, rs1, rs2 });
    }
    /// `flt.s rd, rs1, rs2`
    pub fn flt_s(&mut self, rd: Reg, rs1: FReg, rs2: FReg) {
        self.emit(Instr::FpCmp { op: FpCmpOp::Lt, rd, rs1, rs2 });
    }
    /// `fle.s rd, rs1, rs2`
    pub fn fle_s(&mut self, rd: Reg, rs1: FReg, rs2: FReg) {
        self.emit(Instr::FpCmp { op: FpCmpOp::Le, rd, rs1, rs2 });
    }
    /// `fcvt.w.s rd, rs1` (float → signed int)
    pub fn fcvt_w_s(&mut self, rd: Reg, rs1: FReg) {
        self.emit(Instr::FpCvtToInt { signed: true, rd, rs1 });
    }
    /// `fcvt.wu.s rd, rs1` (float → unsigned int)
    pub fn fcvt_wu_s(&mut self, rd: Reg, rs1: FReg) {
        self.emit(Instr::FpCvtToInt { signed: false, rd, rs1 });
    }
    /// `fcvt.s.w rd, rs1` (signed int → float)
    pub fn fcvt_s_w(&mut self, rd: FReg, rs1: Reg) {
        self.emit(Instr::FpCvtFromInt { signed: true, rd, rs1 });
    }
    /// `fcvt.s.wu rd, rs1` (unsigned int → float)
    pub fn fcvt_s_wu(&mut self, rd: FReg, rs1: Reg) {
        self.emit(Instr::FpCvtFromInt { signed: false, rd, rs1 });
    }
    /// `fmv.x.w rd, rs1` (raw bits FP → int)
    pub fn fmv_x_w(&mut self, rd: Reg, rs1: FReg) {
        self.emit(Instr::FpMvToInt { rd, rs1 });
    }
    /// `fmv.w.x rd, rs1` (raw bits int → FP)
    pub fn fmv_w_x(&mut self, rd: FReg, rs1: Reg) {
        self.emit(Instr::FpMvFromInt { rd, rs1 });
    }
    /// `fclass.s rd, rs1`
    pub fn fclass_s(&mut self, rd: Reg, rs1: FReg) {
        self.emit(Instr::FpClass { rd, rs1 });
    }

    // ---- Vortex SIMT extensions -----------------------------------------------

    /// `vx_tmc rs1` — set the warp's thread mask (0 halts the warp).
    pub fn vx_tmc(&mut self, rs1: Reg) {
        self.emit(Instr::Tmc { rs1 });
    }
    /// `vx_wspawn rs1, rs2` — activate `rs1` warps at the PC in `rs2`.
    pub fn vx_wspawn(&mut self, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Wspawn { rs1, rs2 });
    }
    /// `vx_split rs1, label` — diverge; zero-predicate lanes resume at `label`.
    pub fn vx_split(&mut self, rs1: Reg, label: Label) {
        self.emit_ref(Instr::Split { rs1, offset: 0 }, label);
    }
    /// `vx_join` — reconverge the youngest split.
    pub fn vx_join(&mut self) {
        self.emit(Instr::Join);
    }
    /// `vx_bar rs1, rs2` — barrier `rs1` over `rs2` warps.
    pub fn vx_bar(&mut self, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Bar { rs1, rs2 });
    }
    /// `vx_vote.any rd, rs1`
    pub fn vx_vote_any(&mut self, rd: Reg, rs1: Reg) {
        self.emit(Instr::Vote { op: VoteOp::Any, rd, rs1 });
    }
    /// `vx_vote.all rd, rs1`
    pub fn vx_vote_all(&mut self, rd: Reg, rs1: Reg) {
        self.emit(Instr::Vote { op: VoteOp::All, rd, rs1 });
    }
    /// `vx_vote.ballot rd, rs1`
    pub fn vx_vote_ballot(&mut self, rd: Reg, rs1: Reg) {
        self.emit(Instr::Vote { op: VoteOp::Ballot, rd, rs1 });
    }

    // ---- Pseudo-instructions -----------------------------------------------------

    /// `li rd, imm` — load a 32-bit constant (1–2 instructions).
    pub fn li(&mut self, rd: Reg, imm: i32) {
        if (-2048..=2047).contains(&imm) {
            self.addi(rd, vortex_isa::reg::ZERO, imm);
        } else {
            let hi = imm.wrapping_add(0x800) & !0xFFF;
            let lo = imm.wrapping_sub(hi);
            self.lui(rd, hi);
            if lo != 0 {
                self.addi(rd, rd, lo);
            }
        }
    }

    /// `li rd, value` for an unsigned 32-bit value (e.g. an address).
    pub fn li_u32(&mut self, rd: Reg, value: u32) {
        self.li(rd, value as i32);
    }

    /// `la rd, addr` — load an absolute address (alias of [`li_u32`](Self::li_u32)).
    pub fn la(&mut self, rd: Reg, addr: u32) {
        self.li_u32(rd, addr);
    }

    /// `mv rd, rs` — copy a register.
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }
    /// `not rd, rs`
    pub fn not(&mut self, rd: Reg, rs: Reg) {
        self.xori(rd, rs, -1);
    }
    /// `neg rd, rs`
    pub fn neg(&mut self, rd: Reg, rs: Reg) {
        self.sub(rd, vortex_isa::reg::ZERO, rs);
    }
    /// `seqz rd, rs` — set if zero.
    pub fn seqz(&mut self, rd: Reg, rs: Reg) {
        self.sltiu(rd, rs, 1);
    }
    /// `snez rd, rs` — set if non-zero.
    pub fn snez(&mut self, rd: Reg, rs: Reg) {
        self.sltu(rd, vortex_isa::reg::ZERO, rs);
    }
    /// `nop`
    pub fn nop(&mut self) {
        self.addi(vortex_isa::reg::ZERO, vortex_isa::reg::ZERO, 0);
    }
    /// `j label` — unconditional jump.
    pub fn j(&mut self, label: Label) {
        self.jal(vortex_isa::reg::ZERO, label);
    }
    /// `jr rs1` — indirect jump.
    pub fn jr(&mut self, rs1: Reg) {
        self.jalr(vortex_isa::reg::ZERO, rs1, 0);
    }
    /// `ret` — return via `ra`.
    pub fn ret(&mut self) {
        self.jalr(vortex_isa::reg::ZERO, vortex_isa::reg::RA, 0);
    }
    /// `beqz rs1, label`
    pub fn beqz(&mut self, rs1: Reg, label: Label) {
        self.beq(rs1, vortex_isa::reg::ZERO, label);
    }
    /// `bnez rs1, label`
    pub fn bnez(&mut self, rs1: Reg, label: Label) {
        self.bne(rs1, vortex_isa::reg::ZERO, label);
    }
    /// `bltz rs1, label`
    pub fn bltz(&mut self, rs1: Reg, label: Label) {
        self.blt(rs1, vortex_isa::reg::ZERO, label);
    }
    /// `bgez rs1, label`
    pub fn bgez(&mut self, rs1: Reg, label: Label) {
        self.bge(rs1, vortex_isa::reg::ZERO, label);
    }
    /// `ble rs1, rs2, label` — pseudo via `bge rs2, rs1`.
    pub fn ble(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.bge(rs2, rs1, label);
    }
    /// `bgt rs1, rs2, label` — pseudo via `blt rs2, rs1`.
    pub fn bgt(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.blt(rs2, rs1, label);
    }
    /// `bleu rs1, rs2, label` — pseudo via `bgeu rs2, rs1`.
    pub fn bleu(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.bgeu(rs2, rs1, label);
    }
    /// `bgtu rs1, rs2, label` — pseudo via `bltu rs2, rs1`.
    pub fn bgtu(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.bltu(rs2, rs1, label);
    }
    /// `fmv.s rd, rs` — copy an FP register.
    pub fn fmv_s(&mut self, rd: FReg, rs: FReg) {
        self.fsgnj_s(rd, rs, rs);
    }
    /// `fneg.s rd, rs`
    pub fn fneg_s(&mut self, rd: FReg, rs: FReg) {
        self.fsgnjn_s(rd, rs, rs);
    }
    /// `fabs.s rd, rs`
    pub fn fabs_s(&mut self, rd: FReg, rs: FReg) {
        self.fsgnjx_s(rd, rs, rs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_isa::reg;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new(0x1000);
        let fwd = a.label("fwd");
        let back = a.here("back");
        a.nop(); // 0x1000 (back)
        a.j(fwd); // 0x1004 -> 0x100C: offset +8
        a.nop(); // 0x1008
        a.bind(fwd).unwrap(); // 0x100C
        a.bnez(reg::T0, back); // 0x100C -> 0x1000: offset -12
        let p = a.assemble().unwrap();
        match p.instrs()[1] {
            Instr::Jal { offset, .. } => assert_eq!(offset, 8),
            other => panic!("expected jal, got {other}"),
        }
        match p.instrs()[3] {
            Instr::Branch { offset, .. } => assert_eq!(offset, -12),
            other => panic!("expected branch, got {other}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Assembler::new(0);
        let l = a.label("nowhere");
        a.j(l);
        match a.assemble() {
            Err(AsmError::UnboundLabel { name }) => assert_eq!(name, "nowhere"),
            other => panic!("expected unbound label error, got {other:?}"),
        }
    }

    #[test]
    fn rebound_label_is_an_error() {
        let mut a = Assembler::new(0);
        let l = a.here("twice");
        a.nop();
        assert!(matches!(a.bind(l), Err(AsmError::LabelRebound { .. })));
    }

    #[test]
    fn li_expands_by_magnitude() {
        let mut a = Assembler::new(0);
        a.li(reg::T0, 5); // 1 instr
        a.li(reg::T0, 0x12345); // 2 instrs
        a.li(reg::T0, -4096); // 2 instrs (lui only? -4096 = 0xFFFFF000)
        let p = a.assemble().unwrap();
        assert_eq!(
            p.instrs()[0],
            Instr::OpImm { op: vortex_isa::AluImmOp::Add, rd: reg::T0, rs1: reg::ZERO, imm: 5 }
        );
        assert!(p.len() >= 4);
    }

    #[test]
    fn li_roundtrips_arbitrary_constants() {
        // Simulate the li expansion arithmetic for tricky values.
        for imm in [0i32, 1, -1, 2047, -2048, 2048, -2049, 0x7FFF_FFFF, -0x8000_0000, 0x1234_5678] {
            let hi =
                if (-2048..=2047).contains(&imm) { 0 } else { imm.wrapping_add(0x800) & !0xFFF };
            let lo = imm.wrapping_sub(hi);
            assert_eq!(hi.wrapping_add(lo), imm, "imm {imm}");
            assert!((-2048..=2047).contains(&lo), "low part of {imm} fits addi");
            assert_eq!(hi & 0xFFF, 0, "high part of {imm} is clean");
        }
    }

    #[test]
    fn branch_out_of_range_reports_encode_error() {
        let mut a = Assembler::new(0);
        let far = a.label("far");
        a.beqz(reg::T0, far);
        for _ in 0..2000 {
            a.nop();
        }
        a.bind(far).unwrap();
        match a.assemble() {
            Err(AsmError::Encode { addr, .. }) => assert_eq!(addr, 0),
            other => panic!("expected encode error, got {other:?}"),
        }
    }

    #[test]
    fn sections_cover_code_in_order() {
        let mut a = Assembler::new(0x100);
        a.section("head");
        a.nop();
        a.nop();
        a.section("tail");
        a.nop();
        let p = a.assemble().unwrap();
        let sections = p.sections();
        assert_eq!(sections.len(), 2);
        assert_eq!((sections[0].start, sections[0].end), (0x100, 0x108));
        assert_eq!((sections[1].start, sections[1].end), (0x108, 0x10C));
        assert_eq!(p.section_at(0x104).unwrap().name, "head");
        assert_eq!(p.section_at(0x108).unwrap().name, "tail");
    }

    #[test]
    fn split_references_resolve() {
        let mut a = Assembler::new(0);
        let merge = a.label("merge");
        a.vx_split(reg::T0, merge);
        a.nop();
        a.bind(merge).unwrap();
        a.vx_join();
        let p = a.assemble().unwrap();
        match p.instrs()[0] {
            Instr::Split { offset, .. } => assert_eq!(offset, 8),
            other => panic!("expected split, got {other}"),
        }
    }

    #[test]
    fn pseudo_expansions() {
        let mut a = Assembler::new(0);
        a.mv(reg::A0, reg::A1);
        a.seqz(reg::A0, reg::A1);
        a.snez(reg::A0, reg::A1);
        a.not(reg::A0, reg::A1);
        a.neg(reg::A0, reg::A1);
        let p = a.assemble().unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.instrs()[0].to_string(), "addi a0, a1, 0");
        assert_eq!(p.instrs()[1].to_string(), "sltiu a0, a1, 1");
    }
}
