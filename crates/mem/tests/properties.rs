//! Property tests of the memory subsystem: the cache timing model against
//! a naive reference implementation, coalescing invariants, and channel
//! scheduling monotonicity.

use proptest::prelude::*;
use vortex_mem::{coalesce_lines, Cache, CacheConfig, DramChannel, DramConfig, MainMemory};

/// A deliberately simple reference model of an LRU set-associative cache.
struct RefCache {
    sets: Vec<Vec<u32>>, // most-recent last
    ways: usize,
    line: u32,
    nsets: u32,
}

impl RefCache {
    fn new(config: CacheConfig) -> Self {
        RefCache {
            sets: vec![Vec::new(); config.sets() as usize],
            ways: config.ways as usize,
            line: config.line_bytes,
            nsets: config.sets(),
        }
    }

    fn access(&mut self, addr: u32) -> bool {
        let line = addr / self.line;
        let set = (line % self.nsets) as usize;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&l| l == line) {
            entries.remove(pos);
            entries.push(line);
            true
        } else {
            if entries.len() == self.ways {
                entries.remove(0);
            }
            entries.push(line);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tag-array cache agrees hit-for-hit with the reference LRU model.
    #[test]
    fn cache_matches_reference_lru(addrs in proptest::collection::vec(0u32..4096, 1..300)) {
        let config = CacheConfig { size_bytes: 512, ways: 2, line_bytes: 32 };
        let mut cache = Cache::new(config);
        let mut reference = RefCache::new(config);
        for &addr in &addrs {
            let model = cache.access(addr, false).is_hit();
            let expected = reference.access(addr);
            prop_assert_eq!(model, expected, "divergence at address {:#x}", addr);
        }
    }

    /// Coalescing covers every lane address with exactly one line, and
    /// never produces more lines than lanes.
    #[test]
    fn coalescing_covers_all_lanes(
        addrs in proptest::collection::vec(0u32..100_000, 1..32),
        shift in 4u32..8,
    ) {
        let line = 1u32 << shift;
        let lines = coalesce_lines(addrs.iter().copied(), line);
        prop_assert!(lines.len() <= addrs.len());
        for &addr in &addrs {
            let base = addr & !(line - 1);
            prop_assert!(lines.as_slice().contains(&base), "lane {:#x} uncovered", addr);
        }
        // All produced lines are aligned and unique.
        let slice = lines.as_slice();
        for (i, &l) in slice.iter().enumerate() {
            prop_assert_eq!(l % line, 0);
            prop_assert!(!slice[i + 1..].contains(&l));
        }
    }

    /// DRAM accept times never go backwards for monotone request streams,
    /// and aggregate throughput never exceeds channels/interval.
    #[test]
    fn dram_respects_bandwidth(
        gaps in proptest::collection::vec(0u64..8, 1..200),
        channels in 1u32..8,
        interval in 1u64..6,
    ) {
        let mut dram = DramChannel::new(DramConfig { latency: 10, interval, channels });
        let mut now = 0u64;
        let mut completions = Vec::new();
        for gap in gaps {
            now += gap;
            completions.push(dram.service(now));
        }
        completions.sort_unstable();
        // In any window of `interval` cycles at most `channels` requests
        // complete.
        let c = channels as usize;
        for w in completions.windows(c + 1) {
            prop_assert!(w[c] - w[0] >= interval);
        }
    }

    /// Functional memory behaves like a big byte array.
    #[test]
    fn memory_matches_hashmap_model(
        writes in proptest::collection::vec((0u32..10_000, any::<u8>()), 1..200)
    ) {
        let mut mem = MainMemory::new();
        let mut model = std::collections::HashMap::new();
        for &(addr, value) in &writes {
            mem.write_u8(addr, value);
            model.insert(addr, value);
        }
        for (&addr, &value) in &model {
            prop_assert_eq!(mem.read_u8(addr), value);
        }
        // Word reads assemble little-endian from the byte model.
        for &(addr, _) in writes.iter().take(20) {
            let expected = u32::from_le_bytes([
                *model.get(&addr).unwrap_or(&0),
                *model.get(&(addr + 1)).unwrap_or(&0),
                *model.get(&(addr + 2)).unwrap_or(&0),
                *model.get(&(addr + 3)).unwrap_or(&0),
            ]);
            prop_assert_eq!(mem.read_u32(addr), expected);
        }
    }
}
