//! Randomised tests of the memory subsystem: the cache timing model
//! against a naive reference implementation, coalescing invariants,
//! channel scheduling monotonicity, and the paged functional memory
//! against a byte-map model. Seeds are fixed so failures reproduce.

use vortex_mem::{coalesce_lines, Cache, CacheConfig, DramChannel, DramConfig, MainMemory};
use vortex_rng::Rng;

/// A deliberately simple reference model of an LRU set-associative cache.
struct RefCache {
    sets: Vec<Vec<u32>>, // most-recent last
    ways: usize,
    line: u32,
    nsets: u32,
}

impl RefCache {
    fn new(config: CacheConfig) -> Self {
        RefCache {
            sets: vec![Vec::new(); config.sets() as usize],
            ways: config.ways as usize,
            line: config.line_bytes,
            nsets: config.sets(),
        }
    }

    fn access(&mut self, addr: u32) -> bool {
        let line = addr / self.line;
        let set = (line % self.nsets) as usize;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&l| l == line) {
            entries.remove(pos);
            entries.push(line);
            true
        } else {
            if entries.len() == self.ways {
                entries.remove(0);
            }
            entries.push(line);
            false
        }
    }
}

/// The tag-array cache agrees hit-for-hit with the reference LRU model.
#[test]
fn cache_matches_reference_lru() {
    let mut rng = Rng::seed_from_u64(0xCAC4E);
    for _ in 0..256 {
        let config = CacheConfig { size_bytes: 512, ways: 2, line_bytes: 32 };
        let mut cache = Cache::new(config);
        let mut reference = RefCache::new(config);
        for _ in 0..rng.gen_range_usize(1, 300) {
            let addr = rng.gen_range_u32(0, 4096);
            let model = cache.access(addr, false).is_hit();
            let expected = reference.access(addr);
            assert_eq!(model, expected, "divergence at address {addr:#x}");
        }
    }
}

/// Coalescing covers every lane address with exactly one line, and never
/// produces more lines than lanes.
#[test]
fn coalescing_covers_all_lanes() {
    let mut rng = Rng::seed_from_u64(0xC0A1);
    for _ in 0..256 {
        let line = 1u32 << rng.gen_range_u32(4, 8);
        let addrs: Vec<u32> =
            (0..rng.gen_range_usize(1, 32)).map(|_| rng.gen_range_u32(0, 100_000)).collect();
        let lines = coalesce_lines(addrs.iter().copied(), line);
        assert!(lines.len() <= addrs.len());
        for &addr in &addrs {
            let base = addr & !(line - 1);
            assert!(lines.as_slice().contains(&base), "lane {addr:#x} uncovered");
        }
        // All produced lines are aligned and unique.
        let slice = lines.as_slice();
        for (i, &l) in slice.iter().enumerate() {
            assert_eq!(l % line, 0);
            assert!(!slice[i + 1..].contains(&l));
        }
    }
}

/// DRAM accept times never go backwards for monotone request streams, and
/// aggregate throughput never exceeds channels/interval.
#[test]
fn dram_respects_bandwidth() {
    let mut rng = Rng::seed_from_u64(0xD4A);
    for _ in 0..256 {
        let channels = rng.gen_range_u32(1, 8);
        let interval = rng.gen_range_u64(1, 6);
        let mut dram = DramChannel::new(DramConfig { latency: 10, interval, channels });
        let mut now = 0u64;
        let mut completions = Vec::new();
        for _ in 0..rng.gen_range_usize(1, 200) {
            now += rng.gen_range_u64(0, 8);
            completions.push(dram.service(now));
        }
        completions.sort_unstable();
        // In any window of `interval` cycles at most `channels` requests
        // complete.
        let c = channels as usize;
        for w in completions.windows(c + 1) {
            assert!(w[c] - w[0] >= interval);
        }
    }
}

/// Functional memory behaves like a big byte array.
#[test]
fn memory_matches_hashmap_model() {
    let mut rng = Rng::seed_from_u64(0x4E4);
    for _ in 0..256 {
        let writes: Vec<(u32, u8)> = (0..rng.gen_range_usize(1, 200))
            .map(|_| (rng.gen_range_u32(0, 10_000), rng.next_u32() as u8))
            .collect();
        let mut mem = MainMemory::new();
        let mut model = std::collections::HashMap::new();
        for &(addr, value) in &writes {
            mem.write_u8(addr, value);
            model.insert(addr, value);
        }
        for (&addr, &value) in &model {
            assert_eq!(mem.read_u8(addr), value);
        }
        // Word reads assemble little-endian from the byte model.
        for &(addr, _) in writes.iter().take(20) {
            let expected = u32::from_le_bytes([
                *model.get(&addr).unwrap_or(&0),
                *model.get(&(addr + 1)).unwrap_or(&0),
                *model.get(&(addr + 2)).unwrap_or(&0),
                *model.get(&(addr + 3)).unwrap_or(&0),
            ]);
            assert_eq!(mem.read_u32(addr), expected);
        }
    }
}

/// Bulk slice accessors agree with byte-at-a-time access, across page
/// boundaries and page-cache state.
#[test]
fn bulk_accessors_match_scalar_paths() {
    let mut rng = Rng::seed_from_u64(0xB17);
    for _ in 0..64 {
        let mut mem = MainMemory::new();
        let base = rng.gen_range_u32(0, 50_000);
        let n = rng.gen_range_usize(1, 3000);
        let bytes: Vec<u8> = (0..n).map(|_| rng.next_u32() as u8).collect();
        mem.write_bytes(base, &bytes);
        for (i, &b) in bytes.iter().enumerate() {
            assert_eq!(mem.read_u8(base + i as u32), b, "offset {i}");
        }
        let mut back = vec![0u8; n];
        mem.read_bytes(base, &mut back);
        assert_eq!(back, bytes);
    }
}
