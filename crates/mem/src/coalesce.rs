//! SIMT memory-access coalescing.

/// The unique cache lines touched by one SIMT memory instruction.
///
/// At most 32 lanes exist, so at most 32 distinct lines; the collection is
/// stored inline to keep the simulator allocation-free on its hot path.
#[derive(Copy, Clone, Debug)]
pub struct CoalescedLines {
    lines: [u32; 32],
    len: u8,
}

impl CoalescedLines {
    /// The unique line base addresses, in first-touch order.
    pub fn as_slice(&self) -> &[u32] {
        &self.lines[..self.len as usize]
    }

    /// Number of unique lines (= number of memory requests issued).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no lane made an access.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<'a> IntoIterator for &'a CoalescedLines {
    type Item = u32;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, u32>>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

/// Merges per-lane byte addresses into unique line base addresses.
///
/// `line_bytes` must be a power of two. Order is first-touch, which keeps
/// request streams deterministic.
///
/// # Panics
///
/// Panics if more than 32 addresses are supplied (the SIMT width limit) or
/// if `line_bytes` is not a power of two.
///
/// # Examples
///
/// ```
/// use vortex_mem::coalesce_lines;
/// // Four consecutive words in one 64-byte line -> a single request.
/// let lines = coalesce_lines([0x100, 0x104, 0x108, 0x10C], 64);
/// assert_eq!(lines.as_slice(), &[0x100]);
/// // Strided across lines -> one request per line.
/// let lines = coalesce_lines([0x0, 0x40, 0x80], 64);
/// assert_eq!(lines.len(), 3);
/// ```
pub fn coalesce_lines(addrs: impl IntoIterator<Item = u32>, line_bytes: u32) -> CoalescedLines {
    assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
    let mask = !(line_bytes - 1);
    let mut out = CoalescedLines { lines: [0; 32], len: 0 };
    for addr in addrs {
        let line = addr & mask;
        let current = &out.lines[..out.len as usize];
        // Consecutive lanes overwhelmingly touch the line just recorded
        // (streaming and neighbour-gather patterns), so check it before
        // the full first-touch scan.
        if current.last() == Some(&line) {
            continue;
        }
        if !current.contains(&line) {
            assert!(out.len < 32, "SIMT width exceeds 32 lanes");
            out.lines[out.len as usize] = line;
            out.len += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_coalesces_fully() {
        let addrs = (0..16u32).map(|i| 0x2000 + i * 4);
        let lines = coalesce_lines(addrs, 64);
        assert_eq!(lines.as_slice(), &[0x2000]);
    }

    #[test]
    fn line_stride_does_not_coalesce() {
        let addrs = (0..8u32).map(|i| i * 64);
        let lines = coalesce_lines(addrs, 64);
        assert_eq!(lines.len(), 8);
    }

    #[test]
    fn straddling_accesses_touch_both_lines_base() {
        // Addresses near a boundary still map to their containing line base.
        let lines = coalesce_lines([63, 64], 64);
        assert_eq!(lines.as_slice(), &[0, 64]);
    }

    #[test]
    fn empty_input_is_empty() {
        let lines = coalesce_lines(std::iter::empty(), 64);
        assert!(lines.is_empty());
        assert_eq!(lines.len(), 0);
    }

    #[test]
    fn first_touch_order_is_preserved() {
        let lines = coalesce_lines([0x80, 0x00, 0x80, 0x40], 64);
        assert_eq!(lines.as_slice(), &[0x80, 0x00, 0x40]);
    }

    #[test]
    fn iterator_yields_lines() {
        let lines = coalesce_lines([0, 64], 64);
        let collected: Vec<u32> = (&lines).into_iter().collect();
        assert_eq!(collected, vec![0, 64]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        coalesce_lines([0], 48);
    }
}
