//! Memory subsystem for the Vortex-like GPGPU simulator.
//!
//! The design separates **function** from **timing**:
//!
//! * [`MainMemory`] is the single, flat, byte-addressed 32-bit address space
//!   holding the architectural state. Loads and stores take effect here
//!   immediately (the simulator is functionally in-order), so values are
//!   always exact.
//! * [`MemSystem`] models *when* an access completes: a per-core L1 data
//!   cache, a shared L2, and a DRAM channel with fixed latency plus a
//!   finite service rate (bandwidth). Caches track only tags — they never
//!   hold data, so timing bugs can never corrupt results.
//! * [`coalesce_lines`] merges the per-lane addresses of a SIMT memory
//!   instruction into unique cache-line requests, exactly like the memory
//!   coalescing unit of a GPU load/store pipeline.
//!
//! The bandwidth model is what makes the paper's *memory-bound* kernels
//! (kNN, Gaussian filter, GCN aggregation) behave "atypically": once the
//! DRAM channel saturates, adding parallelism stops helping, and the
//! hardware-aware mapping loses its edge — matching Figure 2.
//!
//! # Examples
//!
//! ```
//! use vortex_mem::{MainMemory, MemConfig, MemSystem};
//!
//! let mut mem = MainMemory::new();
//! mem.write_u32(0x1000, 42);
//! assert_eq!(mem.read_u32(0x1000), 42);
//!
//! let mut sys = MemSystem::new(1, MemConfig::default());
//! let miss = sys.load(0, 0x1000, 0); // cold miss goes to DRAM
//! let hit = sys.load(0, 0x1000, miss); // now it hits in L1
//! assert!(hit - miss < miss);
//! ```

#![forbid(unsafe_code)]

mod cache;
mod coalesce;
mod dram;
mod main_memory;
mod system;

pub use cache::{Cache, CacheConfig, CacheGeometry, CacheStats, Lookup};
pub use coalesce::{coalesce_lines, CoalescedLines};
pub use dram::{DramChannel, DramConfig};
pub use main_memory::MainMemory;
pub use system::{BatchOutcome, MemConfig, MemStats, MemSystem};

/// Simulation time in cycles.
pub type Cycle = u64;
