//! The functional, flat 32-bit address space.

use std::cell::Cell;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// Fan-out of each page-directory level: 10 + 10 + 12 = 32 address bits.
const DIR_SHIFT: u32 = 10;
const DIR_FAN: usize = 1 << DIR_SHIFT;
const DIR_MASK: u32 = (DIR_FAN as u32) - 1;

/// Sentinel slot meaning "page not resident".
const NO_PAGE: u32 = u32::MAX;

/// A sparse, byte-addressed, little-endian 32-bit memory.
///
/// Pages are allocated lazily on first write; reads of untouched memory
/// return zero. This is the *architectural* state — timing is modelled
/// separately by [`MemSystem`](crate::MemSystem).
///
/// # Design
///
/// This sits on the simulator's hottest path (every lane byte of every
/// SIMT load/store), so the page table is a **two-level flat directory**
/// rather than a hash map: the top level splits the 20-bit page number
/// into a 10-bit directory index and a 10-bit leaf index, and each leaf
/// holds `u32` slots into a page arena. A single-entry last-translation
/// cache short-circuits the directory walk entirely for the common case
/// of consecutive accesses landing in one page.
///
/// # Examples
///
/// ```
/// use vortex_mem::MainMemory;
/// let mut mem = MainMemory::new();
/// mem.write_f32(0x100, 1.5);
/// assert_eq!(mem.read_f32(0x100), 1.5);
/// assert_eq!(mem.read_u32(0xDEAD_0000), 0); // untouched reads as zero
/// ```
#[derive(Debug, Clone)]
pub struct MainMemory {
    /// Top-level directory; each leaf maps 1024 page numbers to arena slots.
    dir: Vec<Option<Box<[u32; DIR_FAN]>>>,
    /// Page arena; slot indices come from the directory leaves.
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
    /// Last successful translation: `(page_number, arena_slot)`, or
    /// `(NO_PAGE, _)` when empty. Interior mutability keeps `&self` reads
    /// cheap without threading `&mut` through every accessor.
    last: Cell<(u32, u32)>,
}

impl Default for MainMemory {
    /// An empty memory. (Not derived: the derived `last` cell of `(0, 0)`
    /// would claim page 0 resident in arena slot 0.)
    fn default() -> Self {
        MainMemory::new()
    }
}

impl MainMemory {
    /// Creates an empty memory (all bytes zero).
    pub fn new() -> Self {
        MainMemory { dir: Vec::new(), pages: Vec::new(), last: Cell::new((NO_PAGE, 0)) }
    }

    /// Number of resident (written) pages, for footprint diagnostics.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Drops every page, returning the memory to the all-zero state. The
    /// directory spine is kept allocated so a reused device does not
    /// re-pay the allocation cost each campaign run.
    pub fn clear(&mut self) {
        for leaf in self.dir.iter_mut().flatten() {
            leaf.fill(NO_PAGE);
        }
        self.pages.clear();
        self.last.set((NO_PAGE, 0));
    }

    /// Arena slot of `page`, if resident (updates the translation cache).
    #[inline]
    fn lookup(&self, page: u32) -> Option<usize> {
        let (last_page, last_slot) = self.last.get();
        if last_page == page {
            return Some(last_slot as usize);
        }
        let leaf = self.dir.get((page >> DIR_SHIFT) as usize)?.as_ref()?;
        let slot = leaf[(page & DIR_MASK) as usize];
        if slot == NO_PAGE {
            return None;
        }
        self.last.set((page, slot));
        Some(slot as usize)
    }

    /// Arena slot of `page`, allocating the page (and any missing
    /// directory level) on demand.
    fn lookup_or_alloc(&mut self, page: u32) -> usize {
        let (last_page, last_slot) = self.last.get();
        if last_page == page {
            return last_slot as usize;
        }
        let hi = (page >> DIR_SHIFT) as usize;
        if hi >= self.dir.len() {
            self.dir.resize_with(hi + 1, || None);
        }
        let leaf = self.dir[hi].get_or_insert_with(|| Box::new([NO_PAGE; DIR_FAN]));
        let entry = &mut leaf[(page & DIR_MASK) as usize];
        if *entry == NO_PAGE {
            self.pages.push(Box::new([0u8; PAGE_SIZE]));
            *entry = (self.pages.len() - 1) as u32;
        }
        let slot = *entry;
        self.last.set((page, slot));
        slot as usize
    }

    /// The resident page containing `addr`, if any.
    #[inline]
    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.lookup(addr >> PAGE_SHIFT).map(|slot| &*self.pages[slot])
    }

    /// The page containing `addr`, allocated on demand.
    #[inline]
    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        let slot = self.lookup_or_alloc(addr >> PAGE_SHIFT);
        &mut self.pages[slot]
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.page(addr) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads a little-endian 16-bit value (no alignment requirement).
    pub fn read_u16(&self, addr: u32) -> u16 {
        if addr & PAGE_MASK < PAGE_MASK {
            match self.page(addr) {
                Some(page) => {
                    let off = (addr & PAGE_MASK) as usize;
                    u16::from_le_bytes(page[off..off + 2].try_into().expect("2 bytes"))
                }
                None => 0,
            }
        } else {
            u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
        }
    }

    /// Writes a little-endian 16-bit value.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        if addr & PAGE_MASK < PAGE_MASK {
            let off = (addr & PAGE_MASK) as usize;
            self.page_mut(addr)[off..off + 2].copy_from_slice(&value.to_le_bytes());
        } else {
            let [b0, b1] = value.to_le_bytes();
            self.write_u8(addr, b0);
            self.write_u8(addr.wrapping_add(1), b1);
        }
    }

    /// Reads a little-endian 32-bit value (no alignment requirement).
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        if addr & PAGE_MASK <= PAGE_MASK - 3 {
            // Fast path: within one page.
            match self.page(addr) {
                Some(page) => {
                    let off = (addr & PAGE_MASK) as usize;
                    u32::from_le_bytes(page[off..off + 4].try_into().expect("4 bytes"))
                }
                None => 0,
            }
        } else {
            u32::from_le_bytes([
                self.read_u8(addr),
                self.read_u8(addr.wrapping_add(1)),
                self.read_u8(addr.wrapping_add(2)),
                self.read_u8(addr.wrapping_add(3)),
            ])
        }
    }

    /// Writes a little-endian 32-bit value.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        if addr & PAGE_MASK <= PAGE_MASK - 3 {
            let off = (addr & PAGE_MASK) as usize;
            self.page_mut(addr)[off..off + 4].copy_from_slice(&value.to_le_bytes());
        } else {
            for (i, b) in value.to_le_bytes().into_iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), b);
            }
        }
    }

    /// Reads an IEEE-754 single-precision value.
    #[inline]
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an IEEE-754 single-precision value.
    #[inline]
    pub fn write_f32(&mut self, addr: u32, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Reads `dst.len()` bytes starting at `addr` into `dst`, one resident
    /// page at a time.
    pub fn read_bytes(&self, addr: u32, dst: &mut [u8]) {
        let mut addr = addr;
        let mut dst = dst;
        while !dst.is_empty() {
            let off = (addr & PAGE_MASK) as usize;
            let take = dst.len().min(PAGE_SIZE - off);
            let (head, rest) = dst.split_at_mut(take);
            match self.page(addr) {
                Some(page) => head.copy_from_slice(&page[off..off + take]),
                None => head.fill(0),
            }
            dst = rest;
            addr = addr.wrapping_add(take as u32);
        }
    }

    /// Writes all of `src` starting at `addr`, one page at a time.
    pub fn write_bytes(&mut self, addr: u32, src: &[u8]) {
        let mut addr = addr;
        let mut src = src;
        while !src.is_empty() {
            let off = (addr & PAGE_MASK) as usize;
            let take = src.len().min(PAGE_SIZE - off);
            let (head, rest) = src.split_at(take);
            self.page_mut(addr)[off..off + take].copy_from_slice(head);
            src = rest;
            addr = addr.wrapping_add(take as u32);
        }
    }

    /// Reads `dst.len()` consecutive 32-bit words starting at the
    /// 4-byte-aligned `addr` into `dst`, one resident page at a time —
    /// the allocation-free bulk path behind the simulator's unit-stride
    /// SIMT loads (one page walk per page instead of one per lane).
    pub fn read_u32_into(&self, addr: u32, dst: &mut [u32]) {
        debug_assert!(addr.is_multiple_of(4), "word-aligned bulk read");
        let mut addr = addr;
        let mut dst = dst;
        while !dst.is_empty() {
            let off = (addr & PAGE_MASK) as usize;
            let take = dst.len().min((PAGE_SIZE - off) / 4);
            let (head, rest) = dst.split_at_mut(take);
            match self.page(addr) {
                Some(page) => {
                    for (i, d) in head.iter_mut().enumerate() {
                        let o = off + 4 * i;
                        *d = u32::from_le_bytes(page[o..o + 4].try_into().expect("4 bytes"));
                    }
                }
                None => head.fill(0),
            }
            dst = rest;
            addr = addr.wrapping_add((take * 4) as u32);
        }
    }

    /// Writes `src` as consecutive 32-bit words starting at the
    /// 4-byte-aligned `addr`, one page at a time (bulk dual of
    /// [`read_u32_into`](MainMemory::read_u32_into)).
    pub fn write_u32_from(&mut self, addr: u32, src: &[u32]) {
        debug_assert!(addr.is_multiple_of(4), "word-aligned bulk write");
        let mut addr = addr;
        let mut src = src;
        while !src.is_empty() {
            let off = (addr & PAGE_MASK) as usize;
            let take = src.len().min((PAGE_SIZE - off) / 4);
            let (head, rest) = src.split_at(take);
            let page = self.page_mut(addr);
            for (i, &v) in head.iter().enumerate() {
                let o = off + 4 * i;
                page[o..o + 4].copy_from_slice(&v.to_le_bytes());
            }
            src = rest;
            addr = addr.wrapping_add((take * 4) as u32);
        }
    }

    /// Gathers one word-aligned 32-bit value per set bit of `mask`:
    /// `dst[l] = word at addrs[l]` for every active lane `l`, ascending.
    ///
    /// This is the batched functional path behind the simulator's
    /// *masked* (divergent) and strided SIMT word loads, where the
    /// broadcast/unit-stride bulk paths never fire: lane addresses are
    /// arbitrary, but consecutive active lanes overwhelmingly land in the
    /// same page, so the translation is resolved once per **page run** —
    /// a borrowed page reference reused while lanes stay on the page —
    /// instead of once per lane through the `Cell` translation cache.
    ///
    /// Inactive lanes of `dst` are left untouched. Addresses must be
    /// 4-byte aligned (the SIMT load path faults misaligned lanes before
    /// gathering), so no word straddles a page boundary.
    pub fn read_u32_gather(&self, addrs: &[u32; 32], mask: u32, dst: &mut [u32]) {
        // `NO_PAGE` exceeds every real 20-bit page number, so the first
        // lane always resolves.
        let mut run_page: u32 = NO_PAGE;
        let mut run: Option<&[u8; PAGE_SIZE]> = None;
        let mut m = mask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            let addr = addrs[l];
            debug_assert!(addr.is_multiple_of(4), "word-aligned gather");
            let page = addr >> PAGE_SHIFT;
            if page != run_page {
                run = self.lookup(page).map(|slot| &*self.pages[slot]);
                run_page = page;
            }
            dst[l] = match run {
                Some(p) => {
                    let off = (addr & PAGE_MASK) as usize;
                    u32::from_le_bytes(p[off..off + 4].try_into().expect("4 bytes"))
                }
                None => 0,
            };
        }
    }

    /// Writes a slice of 32-bit words starting at `addr`.
    pub fn write_u32_slice(&mut self, addr: u32, values: &[u32]) {
        // One bulk copy per page instead of one page walk per word.
        let mut bytes = vec![0u8; values.len() * 4];
        for (chunk, &v) in bytes.chunks_exact_mut(4).zip(values) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        self.write_bytes(addr, &bytes);
    }

    /// Reads `len` 32-bit words starting at `addr`.
    pub fn read_u32_vec(&self, addr: u32, len: usize) -> Vec<u32> {
        let mut bytes = vec![0u8; len * 4];
        self.read_bytes(addr, &mut bytes);
        bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes"))).collect()
    }

    /// Writes a slice of single-precision floats starting at `addr`.
    pub fn write_f32_slice(&mut self, addr: u32, values: &[f32]) {
        let mut bytes = vec![0u8; values.len() * 4];
        for (chunk, &v) in bytes.chunks_exact_mut(4).zip(values) {
            chunk.copy_from_slice(&v.to_bits().to_le_bytes());
        }
        self.write_bytes(addr, &bytes);
    }

    /// Reads `len` single-precision floats starting at `addr`.
    pub fn read_f32_vec(&self, addr: u32, len: usize) -> Vec<f32> {
        let mut bytes = vec![0u8; len * 4];
        self.read_bytes(addr, &mut bytes);
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let mut m = MainMemory::new();
        m.write_u8(0, 0xAB);
        m.write_u8(0xFFFF_FFFF, 0xCD);
        assert_eq!(m.read_u8(0), 0xAB);
        assert_eq!(m.read_u8(0xFFFF_FFFF), 0xCD);
        assert_eq!(m.read_u8(1), 0);
    }

    #[test]
    fn words_are_little_endian() {
        let mut m = MainMemory::new();
        m.write_u32(0x100, 0x1122_3344);
        assert_eq!(m.read_u8(0x100), 0x44);
        assert_eq!(m.read_u8(0x103), 0x11);
        assert_eq!(m.read_u16(0x100), 0x3344);
    }

    #[test]
    fn cross_page_access() {
        let mut m = MainMemory::new();
        let addr = 0x1FFE; // spans 0x1000..0x2000 page boundary
        m.write_u32(addr, 0xDEAD_BEEF);
        assert_eq!(m.read_u32(addr), 0xDEAD_BEEF);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn cross_page_u16() {
        let mut m = MainMemory::new();
        m.write_u16(0x2FFF, 0xA55A);
        assert_eq!(m.read_u16(0x2FFF), 0xA55A);
        assert_eq!(m.read_u8(0x2FFF), 0x5A);
        assert_eq!(m.read_u8(0x3000), 0xA5);
    }

    #[test]
    fn float_roundtrip_preserves_bits() {
        let mut m = MainMemory::new();
        for v in [0.0f32, -0.0, 1.5, f32::INFINITY, f32::MIN_POSITIVE] {
            m.write_f32(8, v);
            assert_eq!(m.read_f32(8).to_bits(), v.to_bits());
        }
        // NaN bit pattern preserved too.
        m.write_u32(8, 0x7FC0_0001);
        assert!(m.read_f32(8).is_nan());
        assert_eq!(m.read_u32(8), 0x7FC0_0001);
    }

    #[test]
    fn slice_helpers() {
        let mut m = MainMemory::new();
        m.write_f32_slice(0x2000, &[1.0, 2.0, 3.0]);
        assert_eq!(m.read_f32_vec(0x2000, 3), vec![1.0, 2.0, 3.0]);
        m.write_u32_slice(0x3000, &[7, 8]);
        assert_eq!(m.read_u32_vec(0x3000, 2), vec![7, 8]);
    }

    #[test]
    fn untouched_memory_reads_zero() {
        let m = MainMemory::new();
        assert_eq!(m.read_u32(12345), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn bulk_spans_many_pages() {
        let mut m = MainMemory::new();
        let data: Vec<u8> = (0..3 * PAGE_SIZE + 100).map(|i| i as u8).collect();
        let base = 0x7FF0; // unaligned start, crosses several boundaries
        m.write_bytes(base, &data);
        let mut back = vec![0u8; data.len()];
        m.read_bytes(base, &mut back);
        assert_eq!(back, data);
        // Reads straddling resident and untouched pages zero-fill the gap.
        let mut tail = vec![0xFFu8; 64];
        m.read_bytes(base + data.len() as u32 - 32, &mut tail);
        assert_eq!(&tail[..32], &data[data.len() - 32..]);
        assert!(tail[32..].iter().all(|&b| b == 0));
    }

    #[test]
    fn clear_empties_but_stays_usable() {
        let mut m = MainMemory::new();
        m.write_u32(0x1234, 77);
        m.write_u32(0xFFFF_0000, 88);
        m.clear();
        assert_eq!(m.resident_pages(), 0);
        assert_eq!(m.read_u32(0x1234), 0);
        assert_eq!(m.read_u32(0xFFFF_0000), 0);
        m.write_u32(0x1234, 99);
        assert_eq!(m.read_u32(0x1234), 99);
    }

    #[test]
    fn gather_matches_per_lane_reads_across_pages() {
        let mut m = MainMemory::new();
        // Lanes alternate between two pages, with one lane on an
        // untouched page and one at the very last word of a page.
        let mut addrs = [0u32; 32];
        let pattern = [0x1000u32, 0x2FFC, 0x1010, 0x2F00, 0x9_F000, 0x1000, 0x2FFC, 0x4000];
        addrs[..8].copy_from_slice(&pattern);
        for (i, &a) in pattern.iter().enumerate() {
            if a != 0x9_F000 {
                m.write_u32(a, 0xA000_0000 | i as u32);
            }
        }
        let mask = 0b1101_0111u32; // lanes 0,1,2,4,6,7
        let mut gathered = [0xFFFF_FFFFu32; 32];
        m.read_u32_gather(&addrs, mask, &mut gathered);
        for l in 0..8 {
            if mask & (1 << l) != 0 {
                assert_eq!(gathered[l], m.read_u32(addrs[l]), "lane {l}");
            } else {
                assert_eq!(gathered[l], 0xFFFF_FFFF, "inactive lane {l} touched");
            }
        }
        // The untouched page reads zero through the gather too.
        assert_eq!(gathered[4], 0);
    }

    #[test]
    fn translation_cache_tracks_mutation() {
        let mut m = MainMemory::new();
        // Same page read-after-write through the cache.
        m.write_u32(0x5000, 1);
        assert_eq!(m.read_u32(0x5000), 1);
        // Switch pages repeatedly; the single-entry cache must never serve
        // stale slots.
        for i in 0..10u32 {
            m.write_u32(0x5000 + i * 0x1000, i);
        }
        for i in 0..10u32 {
            assert_eq!(m.read_u32(0x5000 + i * 0x1000), i);
        }
    }
}
