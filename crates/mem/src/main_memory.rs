//! The functional, flat 32-bit address space.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// A sparse, byte-addressed, little-endian 32-bit memory.
///
/// Pages are allocated lazily on first write; reads of untouched memory
/// return zero. This is the *architectural* state — timing is modelled
/// separately by [`MemSystem`](crate::MemSystem).
///
/// # Examples
///
/// ```
/// use vortex_mem::MainMemory;
/// let mut mem = MainMemory::new();
/// mem.write_f32(0x100, 1.5);
/// assert_eq!(mem.read_f32(0x100), 1.5);
/// assert_eq!(mem.read_u32(0xDEAD_0000), 0); // untouched reads as zero
/// ```
#[derive(Debug, Default, Clone)]
pub struct MainMemory {
    pages: HashMap<u32, Box<[u8]>>,
}

impl MainMemory {
    /// Creates an empty memory (all bytes zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident (written) pages, for footprint diagnostics.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| vec![0u8; PAGE_SIZE].into_boxed_slice());
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads a little-endian 16-bit value (no alignment requirement).
    pub fn read_u16(&self, addr: u32) -> u16 {
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
    }

    /// Writes a little-endian 16-bit value.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        let [b0, b1] = value.to_le_bytes();
        self.write_u8(addr, b0);
        self.write_u8(addr.wrapping_add(1), b1);
    }

    /// Reads a little-endian 32-bit value (no alignment requirement).
    pub fn read_u32(&self, addr: u32) -> u32 {
        if addr & PAGE_MASK <= PAGE_MASK - 3 {
            // Fast path: within one page.
            if let Some(page) = self.pages.get(&(addr >> PAGE_SHIFT)) {
                let off = (addr & PAGE_MASK) as usize;
                return u32::from_le_bytes(page[off..off + 4].try_into().expect("4 bytes"));
            }
            return 0;
        }
        u32::from_le_bytes([
            self.read_u8(addr),
            self.read_u8(addr.wrapping_add(1)),
            self.read_u8(addr.wrapping_add(2)),
            self.read_u8(addr.wrapping_add(3)),
        ])
    }

    /// Writes a little-endian 32-bit value.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        if addr & PAGE_MASK <= PAGE_MASK - 3 {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| vec![0u8; PAGE_SIZE].into_boxed_slice());
            let off = (addr & PAGE_MASK) as usize;
            page[off..off + 4].copy_from_slice(&value.to_le_bytes());
            return;
        }
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads an IEEE-754 single-precision value.
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an IEEE-754 single-precision value.
    pub fn write_f32(&mut self, addr: u32, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Writes a slice of 32-bit words starting at `addr`.
    pub fn write_u32_slice(&mut self, addr: u32, values: &[u32]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_u32(addr + (i as u32) * 4, v);
        }
    }

    /// Reads `len` 32-bit words starting at `addr`.
    pub fn read_u32_vec(&self, addr: u32, len: usize) -> Vec<u32> {
        (0..len).map(|i| self.read_u32(addr + (i as u32) * 4)).collect()
    }

    /// Writes a slice of single-precision floats starting at `addr`.
    pub fn write_f32_slice(&mut self, addr: u32, values: &[f32]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_f32(addr + (i as u32) * 4, v);
        }
    }

    /// Reads `len` single-precision floats starting at `addr`.
    pub fn read_f32_vec(&self, addr: u32, len: usize) -> Vec<f32> {
        (0..len).map(|i| self.read_f32(addr + (i as u32) * 4)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let mut m = MainMemory::new();
        m.write_u8(0, 0xAB);
        m.write_u8(0xFFFF_FFFF, 0xCD);
        assert_eq!(m.read_u8(0), 0xAB);
        assert_eq!(m.read_u8(0xFFFF_FFFF), 0xCD);
        assert_eq!(m.read_u8(1), 0);
    }

    #[test]
    fn words_are_little_endian() {
        let mut m = MainMemory::new();
        m.write_u32(0x100, 0x1122_3344);
        assert_eq!(m.read_u8(0x100), 0x44);
        assert_eq!(m.read_u8(0x103), 0x11);
        assert_eq!(m.read_u16(0x100), 0x3344);
    }

    #[test]
    fn cross_page_access() {
        let mut m = MainMemory::new();
        let addr = 0x1FFE; // spans 0x1000..0x2000 page boundary
        m.write_u32(addr, 0xDEAD_BEEF);
        assert_eq!(m.read_u32(addr), 0xDEAD_BEEF);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn float_roundtrip_preserves_bits() {
        let mut m = MainMemory::new();
        for v in [0.0f32, -0.0, 1.5, f32::INFINITY, f32::MIN_POSITIVE] {
            m.write_f32(8, v);
            assert_eq!(m.read_f32(8).to_bits(), v.to_bits());
        }
        // NaN bit pattern preserved too.
        m.write_u32(8, 0x7FC0_0001);
        assert!(m.read_f32(8).is_nan());
        assert_eq!(m.read_u32(8), 0x7FC0_0001);
    }

    #[test]
    fn slice_helpers() {
        let mut m = MainMemory::new();
        m.write_f32_slice(0x2000, &[1.0, 2.0, 3.0]);
        assert_eq!(m.read_f32_vec(0x2000, 3), vec![1.0, 2.0, 3.0]);
        m.write_u32_slice(0x3000, &[7, 8]);
        assert_eq!(m.read_u32_vec(0x3000, 2), vec![7, 8]);
    }

    #[test]
    fn untouched_memory_reads_zero() {
        let m = MainMemory::new();
        assert_eq!(m.read_u32(12345), 0);
        assert_eq!(m.resident_pages(), 0);
    }
}
