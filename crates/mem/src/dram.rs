//! DRAM channel: fixed latency plus a finite service rate.

use crate::Cycle;

/// Books two consecutive earliest-free slots at the same `earliest` cycle
/// with **one** scan over `slots` — the shared core of
/// [`DramChannel::service_pair`] and the L2 bank `slot_pair` in the
/// hierarchy walk (the single copy of the two-smallest booking logic).
/// Returns both accept cycles in booking order; the slot
/// array afterwards is exactly as two sequential
/// `min_by_key`-scan-and-book passes would leave it.
///
/// The scan tracks the earliest and runner-up slots with `min_by_key`'s
/// first-index tie-break; after the first booking only the winner's slot
/// changed, so the second booking is decided between that updated slot
/// and the runner-up (every other slot is ≥ the runner-up, or equal to
/// it at a later index).
pub(crate) fn book_pair(slots: &mut [Cycle], earliest: Cycle, interval: Cycle) -> (Cycle, Cycle) {
    let (mut idx1, mut val1) = (0usize, Cycle::MAX);
    let (mut idx2, mut val2) = (0usize, Cycle::MAX);
    for (i, &s) in slots.iter().enumerate() {
        if s < val1 {
            idx2 = idx1;
            val2 = val1;
            idx1 = i;
            val1 = s;
        } else if s < val2 {
            idx2 = i;
            val2 = s;
        }
    }
    let accept1 = earliest.max(val1);
    let updated1 = accept1 + interval;
    slots[idx1] = updated1;
    let (idx, val) = if updated1 < val2 || (updated1 == val2 && idx1 < idx2) {
        (idx1, updated1)
    } else {
        (idx2, val2)
    };
    let accept2 = earliest.max(val);
    slots[idx] = accept2 + interval;
    (accept1, accept2)
}

/// DRAM channel timing parameters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Cycles from request acceptance to data return.
    pub latency: u64,
    /// Minimum cycles between requests accepted by one channel.
    pub interval: u64,
    /// Independent channels; aggregate bandwidth is
    /// `channels / interval` lines per cycle.
    pub channels: u32,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig { latency: 100, interval: 2, channels: 4 }
    }
}

/// A single DRAM channel shared by all cores.
///
/// Requests are serviced in arrival order at a rate of one per
/// [`DramConfig::interval`] cycles; each takes [`DramConfig::latency`]
/// additional cycles to return. When the channel is saturated, the queueing
/// delay grows without bound — this is the mechanism that caps the
/// throughput of memory-bound kernels.
///
/// # Examples
///
/// ```
/// use vortex_mem::{DramChannel, DramConfig};
/// let mut dram = DramChannel::new(DramConfig { latency: 100, interval: 4, channels: 1 });
/// assert_eq!(dram.service(0), 100);   // accepted at 0
/// assert_eq!(dram.service(0), 104);   // queued behind the first
/// assert_eq!(dram.service(1000), 1100); // idle channel accepts immediately
/// ```
#[derive(Clone, Debug)]
pub struct DramChannel {
    config: DramConfig,
    next_slot: Vec<Cycle>,
    requests: u64,
    busy_cycles: u64,
    last_accept: Cycle,
}

impl DramChannel {
    /// Creates an idle channel group.
    ///
    /// # Panics
    ///
    /// Panics if `config.channels` is zero.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.channels > 0, "DRAM needs at least one channel");
        DramChannel {
            config,
            next_slot: vec![0; config.channels as usize],
            requests: 0,
            busy_cycles: 0,
            last_accept: 0,
        }
    }

    /// The timing parameters.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Submits a line request at cycle `now`; returns its completion
    /// cycle. The request is scheduled on the earliest-free channel.
    #[inline]
    pub fn service(&mut self, now: Cycle) -> Cycle {
        let slot = self.next_slot.iter_mut().min_by_key(|s| **s).expect("at least one channel");
        let accept = now.max(*slot);
        *slot = accept + self.config.interval;
        self.requests += 1;
        self.busy_cycles += self.config.interval;
        self.last_accept = accept;
        accept + self.config.latency
    }

    /// Two consecutive [`service`](DramChannel::service) calls at the same
    /// cycle with **one** channel scan (the miss-with-dirty-L2-victim
    /// pattern: a write-back immediately followed by the fetch). Returns
    /// both completion cycles in booking order; the channel state and
    /// statistics afterwards are exactly those of two sequential calls
    /// (the scan itself is the shared crate-internal `book_pair` helper).
    pub fn service_pair(&mut self, now: Cycle) -> (Cycle, Cycle) {
        let interval = self.config.interval;
        let (accept1, accept2) = book_pair(&mut self.next_slot, now, interval);
        self.requests += 2;
        self.busy_cycles += 2 * interval;
        self.last_accept = accept2;
        (accept1 + self.config.latency, accept2 + self.config.latency)
    }

    /// Total requests serviced.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Fraction of the aggregate service slots used up to cycle `horizon`
    /// (1.0 means the channels were the bottleneck the entire time).
    pub fn utilization(&self, horizon: Cycle) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            let capacity = horizon as f64 * self.config.channels as f64;
            (self.busy_cycles as f64 / capacity).min(1.0)
        }
    }

    /// Clears queue state and statistics.
    pub fn reset(&mut self) {
        self.next_slot.fill(0);
        self.requests = 0;
        self.busy_cycles = 0;
        self.last_accept = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_applies_when_idle() {
        let mut d = DramChannel::new(DramConfig { latency: 50, interval: 1, channels: 1 });
        assert_eq!(d.service(10), 60);
    }

    #[test]
    fn bandwidth_queues_back_to_back_requests() {
        let mut d = DramChannel::new(DramConfig { latency: 10, interval: 4, channels: 1 });
        let c1 = d.service(0);
        let c2 = d.service(0);
        let c3 = d.service(0);
        assert_eq!(c1, 10);
        assert_eq!(c2, 14);
        assert_eq!(c3, 18);
        assert_eq!(d.requests(), 3);
    }

    #[test]
    fn channels_serve_in_parallel() {
        let mut d = DramChannel::new(DramConfig { latency: 10, interval: 4, channels: 2 });
        assert_eq!(d.service(0), 10); // channel A
        assert_eq!(d.service(0), 10); // channel B
        assert_eq!(d.service(0), 14); // back on A
        assert_eq!(d.service(0), 14); // back on B
    }

    #[test]
    fn idle_gaps_reset_queueing() {
        let mut d = DramChannel::new(DramConfig { latency: 10, interval: 4, channels: 1 });
        d.service(0);
        let late = d.service(100);
        assert_eq!(late, 110);
    }

    #[test]
    fn utilization_is_bounded() {
        let mut d = DramChannel::new(DramConfig { latency: 10, interval: 2, channels: 2 });
        for _ in 0..400 {
            d.service(0);
        }
        assert!((d.utilization(200) - 1.0).abs() < 1e-12);
        assert_eq!(d.utilization(0), 0.0);
    }

    #[test]
    fn reset_restores_idle_state() {
        let mut d = DramChannel::new(DramConfig::default());
        d.service(0);
        d.reset();
        assert_eq!(d.requests(), 0);
        let c = d.service(0);
        assert_eq!(c, DramConfig::default().latency);
    }
}
