//! The assembled memory hierarchy: per-core L1s, shared L2, one DRAM channel.

use crate::cache::Lookup;
use crate::{Cache, CacheConfig, CacheStats, Cycle, DramChannel, DramConfig};

/// Timing and geometry parameters of the full memory hierarchy.
///
/// The defaults approximate the Vortex FPGA configuration scale: 16 KiB
/// 4-way L1 per core, 256 KiB 8-way shared L2, 64-byte lines, ~100-cycle
/// DRAM with one line per two cycles of bandwidth.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// Per-core L1 data cache geometry.
    pub l1: CacheConfig,
    /// Independent L1 banks: lines a single SIMT access can service per
    /// cycle (uncoalesced accesses serialise over `lines / l1_banks`
    /// cycles, as in Vortex's banked dcache).
    pub l1_banks: u32,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
    /// Independent L2 banks (requests accepted per `l2_interval`).
    pub l2_banks: u32,
    /// L1 hit latency (cycles from issue to writeback).
    pub l1_latency: u64,
    /// Additional latency for an access that hits in L2.
    pub l2_latency: u64,
    /// Minimum cycles between requests accepted by the L2 (bandwidth).
    pub l2_interval: u64,
    /// DRAM channel parameters.
    pub dram: DramConfig,
    /// Experimental per-core line-result memo: a batched **load** whose
    /// line hit L1 within the same memo window skips the tag walk and
    /// reuses the hit verdict. **Not timing-model-neutral**: a skipped tag
    /// walk does not advance the LRU clock or the hit counters, so cache
    /// statistics (and, through LRU order, eventual evictions) diverge
    /// from the reference model — see the ROADMAP findings. Off by
    /// default; flip only for experiments that tolerate approximate cache
    /// statistics.
    pub l1_line_memo: bool,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1: CacheConfig { size_bytes: 16 * 1024, ways: 4, line_bytes: 64 },
            l1_banks: 32,
            l2: CacheConfig { size_bytes: 256 * 1024, ways: 8, line_bytes: 64 },
            l2_banks: 4,
            l1_latency: 2,
            l2_latency: 20,
            l2_interval: 1,
            dram: DramConfig::default(),
            l1_line_memo: false,
        }
    }
}

/// Aggregate statistics over the whole hierarchy.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Load line-requests issued.
    pub loads: u64,
    /// Store line-requests issued.
    pub stores: u64,
    /// L1 counters summed over cores.
    pub l1: CacheStats,
    /// Shared L2 counters.
    pub l2: CacheStats,
    /// Lines serviced by DRAM.
    pub dram_requests: u64,
}

impl MemStats {
    /// Adds `other`'s counters into `self` (aggregation across runs or
    /// configurations — used by the benchmark reporting).
    pub fn accumulate(&mut self, other: &MemStats) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.l1.accumulate(&other.l1);
        self.l2.accumulate(&other.l2);
        self.dram_requests += other.dram_requests;
    }
}

/// Outcome of one batched SIMT access (see [`MemSystem::access_batch`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Completion cycle of the slowest line of the access (the submit
    /// cycle itself when the batch was empty).
    pub completion: Cycle,
    /// L1 port slots the access occupied: `ceil(lines / l1_banks)`, at
    /// least one — the number of cycles before the core's memory port can
    /// accept the next access.
    pub port_slots: Cycle,
}

/// Per-core line-result memo entry (`l1_line_memo`): line id and memo
/// window of a recent L1 **load hit**.
#[derive(Copy, Clone, Debug)]
struct MemoEntry {
    /// Line id, `u64::MAX` when empty (cannot collide with a 32-bit id).
    line: u64,
    /// `now >> MEMO_WINDOW_SHIFT` at the time of the hit.
    window: Cycle,
}

const MEMO_EMPTY: MemoEntry = MemoEntry { line: u64::MAX, window: 0 };
/// Direct-mapped memo entries per core (power of two).
const MEMO_WAYS: usize = 32;
/// Memo window: hits are reusable for `2^4 = 16` cycles.
const MEMO_WINDOW_SHIFT: u32 = 4;

/// The timing model of the memory hierarchy.
///
/// The primary entry point is [`access_batch`](MemSystem::access_batch):
/// the simulator hands over the whole coalesced line set of one SIMT
/// memory instruction, and the hierarchy walks every line through L1, L2
/// and DRAM in a single pass — per-access invariants (cache geometry,
/// latencies, the L1 reference) are hoisted out of the per-line loop, and
/// the L2 bandwidth-slot bookings of a dirty-victim miss share one bank
/// scan. The scalar [`load`](MemSystem::load)/[`store`](MemSystem::store)
/// wrappers remain for single-line callers and tests; both paths run the
/// identical downstream walk.
///
/// All entry points take a request at an absolute cycle and return the
/// cycle at which the data is available (loads) or the write has drained
/// (stores). Stores are write-back/write-allocate and the requesting warp
/// does not wait for them; their return value only matters for bandwidth
/// accounting.
///
/// # Examples
///
/// ```
/// use vortex_mem::{MemConfig, MemSystem};
/// let mut sys = MemSystem::new(2, MemConfig::default());
/// let t1 = sys.load(0, 0x1000, 0);      // cold: L1 miss, L2 miss, DRAM
/// let t2 = sys.load(0, 0x1000, t1);     // L1 hit
/// let t3 = sys.load(1, 0x1000, t2);     // other core: misses L1, hits L2
/// assert!(t2 - t1 < t3 - t2 && t3 - t2 < t1);
/// ```
#[derive(Clone, Debug)]
pub struct MemSystem {
    config: MemConfig,
    l1s: Vec<Cache>,
    l2: Cache,
    l2_next_slot: Vec<Cycle>,
    dram: DramChannel,
    loads: u64,
    stores: u64,
    /// Per-core direct-mapped memo tables, `MEMO_WAYS` entries per core;
    /// empty when `l1_line_memo` is off.
    memo: Vec<MemoEntry>,
    /// Core ids that served at least one line since the last reset, in
    /// first-touch order: reset sweeps and stat aggregation walk this
    /// list instead of the topology, so an idle core's L1 costs zero
    /// bytes touched.
    touched: Vec<usize>,
    /// Per-core membership flag for `touched` (O(1) hot-path check).
    l1_touched: Vec<bool>,
    /// Per-core count of batched SIMT accesses that carried ≥ 1 line
    /// (one per memory instruction reaching the port). Raw sums — exact
    /// to merge across shards and workers.
    port_accesses: Vec<u64>,
    /// Per-core total of *extra* L1 port slots beyond the first each
    /// access occupied — the cycles the core's memory port stayed blocked
    /// by serialisation of uncoalesced lines. Zero under perfect
    /// coalescing; raw sums.
    port_stalls: Vec<u64>,
}

/// The downstream (L2 + DRAM) leg of the walk, borrowed disjointly from
/// the L1 being walked so the batch loop can keep `&mut` references to
/// both sides at once. One instance serves a whole batch; the scalar path
/// builds a fresh one per call. All booking orders are identical to the
/// historical per-line walk — this struct is the single copy of the
/// below-L1 timing semantics.
struct Downstream<'a> {
    l2: &'a mut Cache,
    slots: &'a mut [Cycle],
    dram: &'a mut DramChannel,
    l2_latency: Cycle,
    l2_interval: Cycle,
}

impl Downstream<'_> {
    /// Books one L2 bandwidth slot (earliest-free bank, min scan).
    #[inline]
    fn slot(&mut self, earliest: Cycle) -> Cycle {
        let slot = self.slots.iter_mut().min_by_key(|s| **s).expect("at least one bank");
        let accept = earliest.max(*slot);
        *slot = accept + self.l2_interval;
        accept
    }

    /// Books two L2 slots at the same earliest cycle with **one** bank
    /// scan (the dirty-victim pattern: the L1 write-back immediately
    /// followed by the fetch — historically two full scans per L1
    /// writeback miss). State and results are exactly those of two
    /// sequential [`slot`](Downstream::slot) calls; the scan is the
    /// shared [`book_pair`](crate::dram::book_pair) helper, the single
    /// copy of the two-smallest booking logic.
    fn slot_pair(&mut self, earliest: Cycle) -> (Cycle, Cycle) {
        crate::dram::book_pair(self.slots, earliest, self.l2_interval)
    }

    /// Serves one L1 miss below L1: the optional dirty victim drains into
    /// L2 (and onward to DRAM when it displaces a dirty L2 line), then the
    /// requested line is fetched through L2/DRAM. `l1_done` is the cycle
    /// the L1 lookup resolved (`submit + l1_latency`); the return value is
    /// the fill completion cycle.
    fn miss(&mut self, addr: u32, l1_writeback: Option<u32>, l1_done: Cycle) -> Cycle {
        let at_l2 = match l1_writeback {
            Some(victim) => {
                // L1 victim drains into L2 (dirty there), consuming an
                // L2 bandwidth slot; a dirty L2 victim drains to DRAM.
                let (wb_at, at_l2) = self.slot_pair(l1_done);
                if let Lookup::Miss { writeback: Some(_) } = self.l2.access(victim, true) {
                    self.dram.service(wb_at);
                }
                at_l2
            }
            None => self.slot(l1_done),
        };
        match self.l2.access(addr, false) {
            Lookup::Hit => at_l2 + self.l2_latency,
            Lookup::Miss { writeback: l2_wb } => {
                let t = at_l2 + self.l2_latency;
                if l2_wb.is_some() {
                    // L2 victim write-back to DRAM (bandwidth only),
                    // booked together with the fetch in one channel scan.
                    self.dram.service_pair(t).1
                } else {
                    self.dram.service(t)
                }
            }
        }
    }
}

impl MemSystem {
    /// Creates the hierarchy for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if a cache geometry in `config` is invalid.
    pub fn new(num_cores: usize, config: MemConfig) -> Self {
        assert!(config.l2_banks > 0, "L2 needs at least one bank");
        MemSystem {
            config,
            l1s: (0..num_cores).map(|_| Cache::new(config.l1)).collect(),
            l2: Cache::new(config.l2),
            l2_next_slot: vec![0; config.l2_banks as usize],
            dram: DramChannel::new(config.dram),
            loads: 0,
            stores: 0,
            memo: if config.l1_line_memo {
                vec![MEMO_EMPTY; num_cores * MEMO_WAYS]
            } else {
                Vec::new()
            },
            touched: Vec::new(),
            l1_touched: vec![false; num_cores],
            port_accesses: vec![0; num_cores],
            port_stalls: vec![0; num_cores],
        }
    }

    /// Marks `core` as having served traffic since the last reset.
    #[inline]
    fn mark_touched(&mut self, core: usize) {
        if !self.l1_touched[core] {
            self.l1_touched[core] = true;
            self.touched.push(core);
        }
    }

    /// The hierarchy parameters.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Line size shared by both cache levels (bytes).
    pub fn line_bytes(&self) -> u32 {
        self.config.l1.line_bytes
    }

    /// Submits a load for the line containing `addr` from `core` at `now`;
    /// returns the completion cycle.
    pub fn load(&mut self, core: usize, addr: u32, now: Cycle) -> Cycle {
        self.loads += 1;
        self.access(core, addr, now, false)
    }

    /// Submits a store for the line containing `addr`; returns the cycle
    /// the line is owned dirty in L1 (write-back, write-allocate — the
    /// requesting warp never waits for stores).
    pub fn store(&mut self, core: usize, addr: u32, now: Cycle) -> Cycle {
        self.stores += 1;
        self.access(core, addr, now, true)
    }

    /// Shared write-back/write-allocate walk for one line. A miss at a
    /// level fills from below; a displaced dirty victim is written back
    /// downstream (consuming bandwidth but not blocking the requester).
    fn access(&mut self, core: usize, addr: u32, now: Cycle, is_store: bool) -> Cycle {
        self.mark_touched(core);
        let l1_done = now + self.config.l1_latency;
        match self.l1s[core].access(addr, is_store) {
            Lookup::Hit => l1_done,
            Lookup::Miss { writeback } => {
                let mut down = Downstream {
                    l2: &mut self.l2,
                    slots: &mut self.l2_next_slot,
                    dram: &mut self.dram,
                    l2_latency: self.config.l2_latency,
                    l2_interval: self.config.l2_interval,
                };
                down.miss(addr, writeback, l1_done)
            }
        }
    }

    /// Walks **all** coalesced lines of one SIMT memory access through the
    /// hierarchy in a single pass.
    ///
    /// `lines` are the unique line *base addresses* of the access (see
    /// [`coalesce_lines`](crate::coalesce_lines)), submitted in order. The
    /// banked L1 accepts [`l1_banks`](MemConfig::l1_banks) lines per
    /// cycle, so the submit cycle advances by one after every filled bank
    /// group — uncoalesced accesses serialise exactly as they did when the
    /// simulator issued per-line calls. The returned [`BatchOutcome`]
    /// carries the slowest line's completion cycle plus the port-slot
    /// count; [`access_batch_into`](MemSystem::access_batch_into)
    /// additionally records per-line completions.
    ///
    /// Equivalent to — and bit-identical with — the scalar per-line loop
    ///
    /// ```
    /// # use vortex_mem::{MemConfig, MemSystem, Cycle};
    /// # let mut scalar = MemSystem::new(1, MemConfig::default());
    /// # let mut batched = scalar.clone();
    /// # let (core, now, is_store, lines) = (0, 0, false, [0x40u32, 0x80, 0x1040]);
    /// # let banks = scalar.config().l1_banks.max(1) as usize;
    /// let mut completions = Vec::new();
    /// for (i, &line) in lines.iter().enumerate() {
    ///     let at = now + (i / banks) as Cycle;
    ///     completions.push(if is_store {
    ///         scalar.store(core, line, at)
    ///     } else {
    ///         scalar.load(core, line, at)
    ///     });
    /// }
    /// # let mut batch = Vec::new();
    /// # let out = batched.access_batch_into(core, &lines, now, is_store, &mut batch);
    /// # assert_eq!(batch, completions);
    /// # assert_eq!(out.completion, *completions.iter().max().unwrap());
    /// ```
    ///
    /// but with the per-access invariants (config loads, the L1 borrow,
    /// the cache geometry header) hoisted out of the loop and the L2
    /// slot/DRAM channel scans of a dirty-victim miss folded into single
    /// passes.
    #[inline]
    pub fn access_batch(
        &mut self,
        core: usize,
        lines: &[u32],
        now: Cycle,
        is_store: bool,
    ) -> BatchOutcome {
        self.walk(core, lines.iter().copied(), now, is_store, None)
    }

    /// [`access_batch`](MemSystem::access_batch), additionally writing
    /// each line's completion cycle to `completions` (cleared first — a
    /// reusable scratch buffer; white-box tests and tools replay batches
    /// through it, the simulator's hot path takes the record-free entry
    /// point).
    pub fn access_batch_into(
        &mut self,
        core: usize,
        lines: &[u32],
        now: Cycle,
        is_store: bool,
        completions: &mut Vec<Cycle>,
    ) -> BatchOutcome {
        completions.clear();
        self.walk(core, lines.iter().copied(), now, is_store, Some(completions))
    }

    /// [`access_batch`](MemSystem::access_batch) for the contiguous
    /// ascending span of line base addresses covering
    /// `addr0..=addr_last` — the broadcast and unit-stride fast paths.
    /// The coalesced line sequence of such a span is exactly the
    /// ascending run of line bases it covers, so it is generated
    /// arithmetically inside the walk instead of being materialised into
    /// a buffer first.
    pub fn access_span(
        &mut self,
        core: usize,
        addr0: u32,
        addr_last: u32,
        now: Cycle,
        is_store: bool,
    ) -> BatchOutcome {
        let line_bytes = self.config.l1.line_bytes;
        let first = addr0 & !(line_bytes - 1);
        let last = addr_last & !(line_bytes - 1);
        let nlines = (((last - first) >> line_bytes.trailing_zeros()) + 1) as usize;
        let lines = (0..nlines).map(|i| first + i as u32 * line_bytes);
        self.walk(core, lines, now, is_store, None)
    }

    /// The one shared batch walk (see [`access_batch`]
    /// (MemSystem::access_batch) for the semantics). Generic over the
    /// line iterator so the coalesced-slice and arithmetic-span entry
    /// points monomorphise without buffering; `completions` is `None` on
    /// the simulator's hot path, and after inlining the constant folds
    /// the recording away.
    fn walk<I: ExactSizeIterator<Item = u32>>(
        &mut self,
        core: usize,
        lines: I,
        now: Cycle,
        is_store: bool,
        mut completions: Option<&mut Vec<Cycle>>,
    ) -> BatchOutcome {
        let nlines = lines.len() as u64;
        if nlines == 0 {
            // Same outcome the general tail produces for an empty batch;
            // returning here keeps empty accesses from marking the L1
            // touched or consuming port counters.
            return BatchOutcome { completion: now, port_slots: 1 };
        }
        self.mark_touched(core);
        if is_store {
            self.stores += nlines;
        } else {
            self.loads += nlines;
        }
        let banks = self.config.l1_banks.max(1) as usize;
        let l1_latency = self.config.l1_latency;
        let memo_on = self.config.l1_line_memo && !is_store;
        // Disjoint field borrows: the L1 being walked on one side, the
        // downstream L2/DRAM legs (reborrowed per miss) on the other.
        let l1 = &mut self.l1s[core];
        let geom = l1.geometry();
        let (l2, slots, dram) = (&mut self.l2, &mut self.l2_next_slot, &mut self.dram);
        let (l2_latency, l2_interval) = (self.config.l2_latency, self.config.l2_interval);
        let memo = if memo_on {
            &mut self.memo[core * MEMO_WAYS..(core + 1) * MEMO_WAYS]
        } else {
            &mut []
        };

        let mut completion = now;
        // The L1 accepts `banks` lines per cycle; `at` advances one cycle
        // per filled bank group, incrementally — `now + i / banks` would
        // put a hardware division on every line of a divergent gather.
        let mut at = now;
        let mut in_group = 0usize;
        for line_addr in lines {
            let line = geom.line_of(line_addr);
            // The miss leg is outlined behind this closure-shaped helper:
            // the downstream references are reborrowed only when a line
            // actually misses, and the hit loop stays compact.
            let mut miss = |writeback: Option<u32>, l1_done: Cycle| {
                let mut down = Downstream {
                    l2: &mut *l2,
                    slots: &mut *slots,
                    dram: &mut *dram,
                    l2_latency,
                    l2_interval,
                };
                down.miss(line_addr, writeback, l1_done)
            };
            let done = if memo_on {
                let window = at >> MEMO_WINDOW_SHIFT;
                let entry = &mut memo[line as usize & (MEMO_WAYS - 1)];
                if entry.line == u64::from(line) && entry.window == window {
                    // Memoised same-window hit: skip the tag walk
                    // entirely (this is the statistics divergence the
                    // `l1_line_memo` docs warn about).
                    at + l1_latency
                } else {
                    match l1.access_line(line, false) {
                        Lookup::Hit => {
                            *entry = MemoEntry { line: u64::from(line), window };
                            at + l1_latency
                        }
                        Lookup::Miss { writeback } => {
                            *entry = MEMO_EMPTY;
                            miss(writeback, at + l1_latency)
                        }
                    }
                }
            } else {
                match l1.access_line(line, is_store) {
                    Lookup::Hit => at + l1_latency,
                    Lookup::Miss { writeback } => miss(writeback, at + l1_latency),
                }
            };
            if let Some(buf) = completions.as_deref_mut() {
                buf.push(done);
            }
            completion = completion.max(done);
            in_group += 1;
            if in_group == banks {
                in_group = 0;
                at += 1;
            }
        }
        // Port slots consumed: ceil(lines / banks), at least one.
        let port_slots = (at - now + Cycle::from(in_group > 0)).max(1);
        self.port_accesses[core] += 1;
        self.port_stalls[core] += port_slots - 1;
        BatchOutcome { completion, port_slots }
    }

    /// Aggregate statistics. Walks only L1s that served traffic since
    /// the last reset (the rest are zero by construction), so the sweep
    /// is O(touched cores), not O(topology).
    pub fn stats(&self) -> MemStats {
        let mut l1 = CacheStats::default();
        for &core in &self.touched {
            l1.accumulate(&self.l1s[core].stats());
        }
        MemStats {
            loads: self.loads,
            stores: self.stores,
            l1,
            l2: self.l2.stats(),
            dram_requests: self.dram.requests(),
        }
    }

    /// Per-core L1 statistics.
    pub fn l1_stats(&self, core: usize) -> CacheStats {
        self.l1s[core].stats()
    }

    /// Core ids that served at least one line since the last reset, in
    /// first-touch order (per-cluster aggregations walk this instead of
    /// the topology).
    pub fn touched_cores(&self) -> &[usize] {
        &self.touched
    }

    /// One core's SIMT memory-port counters `(accesses, stall_slots)`:
    /// batched accesses that reached the port, and the extra L1 port
    /// slots beyond the first each occupied (see the field docs).
    pub fn port_counters(&self, core: usize) -> (u64, u64) {
        (self.port_accesses[core], self.port_stalls[core])
    }

    /// Port counters summed over every core that served traffic
    /// (O(touched); untouched cores are zero by construction). Raw sums —
    /// exact to merge across shards and workers.
    pub fn port_totals(&self) -> (u64, u64) {
        let mut accesses = 0;
        let mut stalls = 0;
        for &core in &self.touched {
            accesses += self.port_accesses[core];
            stalls += self.port_stalls[core];
        }
        (accesses, stalls)
    }

    /// DRAM service-slot utilisation up to `horizon` (see
    /// [`DramChannel::utilization`]).
    pub fn dram_utilization(&self, horizon: Cycle) -> f64 {
        self.dram.utilization(horizon)
    }

    /// Invalidates caches and clears all timing state and statistics.
    /// L1 banks that served no access since the previous reset are
    /// skipped (see [`Cache::reset`]); returns how many were actually
    /// swept, so a low-occupancy launch's reset stays proportional to
    /// the cores it touched rather than the topology.
    pub fn reset(&mut self) -> usize {
        // Walk the first-touch list, not the topology: every listed L1
        // served at least one access, so its sweep always does work.
        let swept = self.touched.len();
        for i in 0..swept {
            let core = self.touched[i];
            let did = self.l1s[core].reset();
            debug_assert!(did, "a touched L1 always has state to sweep");
            self.l1_touched[core] = false;
            self.port_accesses[core] = 0;
            self.port_stalls[core] = 0;
        }
        self.touched.clear();
        self.l2.reset();
        self.l2_next_slot.fill(0);
        self.dram.reset();
        self.loads = 0;
        self.stores = 0;
        self.memo.fill(MEMO_EMPTY);
        swept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: usize) -> MemSystem {
        MemSystem::new(cores, MemConfig::default())
    }

    /// Replays `lines` through the scalar per-line API with the batch
    /// walk's bank-group submit-time advancement — the reference the
    /// batched path must match call for call.
    fn scalar_reference(
        s: &mut MemSystem,
        core: usize,
        lines: &[u32],
        now: Cycle,
        is_store: bool,
    ) -> Vec<Cycle> {
        let banks = s.config().l1_banks.max(1) as usize;
        lines
            .iter()
            .enumerate()
            .map(|(i, &line)| {
                let at = now + (i / banks) as Cycle;
                if is_store {
                    s.store(core, line, at)
                } else {
                    s.load(core, line, at)
                }
            })
            .collect()
    }

    /// Asserts the batched entry points on clones of `s` reproduce the
    /// scalar sequence exactly: per-line completions, outcome, and every
    /// statistic afterwards — for both the recording and the record-free
    /// walk.
    fn assert_batch_matches_scalar(
        s: &mut MemSystem,
        core: usize,
        lines: &[u32],
        now: Cycle,
        is_store: bool,
    ) {
        let mut recorded = s.clone();
        let mut quick = s.clone();
        let scalar = scalar_reference(s, core, lines, now, is_store);
        let mut completions = Vec::new();
        let out = recorded.access_batch_into(core, lines, now, is_store, &mut completions);
        assert_eq!(completions, scalar, "per-line completions diverge");
        assert_eq!(
            out.completion,
            scalar.iter().copied().max().unwrap_or(now),
            "batch completion is not the slowest line"
        );
        assert_eq!(recorded.stats(), s.stats(), "statistics diverge after the walk");
        // The record-free hot path is the same walk minus the buffer.
        let quick_out = quick.access_batch(core, lines, now, is_store);
        assert_eq!(quick_out, out, "record-free walk diverges from the recording walk");
        assert_eq!(quick.stats(), s.stats(), "record-free statistics diverge");
    }

    #[test]
    fn latency_ordering_l1_l2_dram() {
        let mut s = sys(2);
        let cfg = *s.config();
        let cold = s.load(0, 0x4000, 0);
        assert!(cold >= cfg.l1_latency + cfg.l2_latency + cfg.dram.latency);
        let hit = s.load(0, 0x4000, 1000) - 1000;
        assert_eq!(hit, cfg.l1_latency);
        let l2_hit = s.load(1, 0x4000, 2000) - 2000;
        assert_eq!(l2_hit, cfg.l1_latency + cfg.l2_latency);
    }

    #[test]
    fn dram_bandwidth_is_shared_between_cores() {
        let mut s = sys(2);
        // Stream distinct lines from both cores at the same cycle; the
        // completions must spread out by the DRAM interval.
        let mut completions: Vec<u64> =
            (0..64u32).map(|i| s.load((i % 2) as usize, 0x10_0000 + i * 64, 0)).collect();
        completions.sort_unstable();
        // With C channels at one line per `interval`, at most C requests
        // can complete in any `interval`-cycle window.
        let dram = s.config().dram;
        let window = dram.interval;
        let per_window = completions
            .windows(dram.channels as usize + 1)
            .map(|w| w[dram.channels as usize] - w[0])
            .min()
            .unwrap();
        assert!(
            per_window >= window,
            "more than {} completions per {window} cycles",
            dram.channels
        );
    }

    #[test]
    fn stores_allocate_and_absorb() {
        let mut s = sys(1);
        s.store(0, 0x8000, 0);
        // Write-allocate: a following load hits L1.
        let t = s.load(0, 0x8000, 100);
        assert_eq!(t - 100, s.config().l1_latency);
        // Repeated stores to the hot line are absorbed (no extra DRAM
        // traffic beyond the original fill).
        let before = s.stats().dram_requests;
        for i in 0..16 {
            s.store(0, 0x8000 + i * 4, 200 + u64::from(i));
        }
        assert_eq!(s.stats().dram_requests, before);
    }

    #[test]
    fn dirty_evictions_write_back() {
        let mut s = sys(1);
        // Dirty many distinct lines, far exceeding L1 capacity, then
        // observe DRAM write-back traffic beyond the fills.
        let lines = 16 * 1024; // 4x the 256KiB L2 at 64B lines
        let mut now = 0;
        for i in 0..lines {
            now = s.store(0, i * 64, now);
        }
        let st = s.stats();
        // Every fill reaches DRAM (cold, too big for L2 as well), and
        // dirty victims add write-back requests on top.
        assert!(
            st.dram_requests > u64::from(lines),
            "write-backs add DRAM traffic: {} vs {} fills",
            st.dram_requests,
            lines
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut s = sys(1);
        s.load(0, 0, 0);
        s.load(0, 0, 10);
        s.store(0, 64, 20);
        let st = s.stats();
        assert_eq!(st.loads, 2);
        assert_eq!(st.stores, 1);
        assert_eq!(st.l1.hits, 1);
        assert!(st.dram_requests >= 2); // one load fill + one store drain
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut s = sys(1);
        let cold1 = s.load(0, 0, 0);
        s.reset();
        let cold2 = s.load(0, 0, 0);
        assert_eq!(cold1, cold2);
        assert_eq!(s.stats().loads, 1);
    }

    #[test]
    fn capacity_thrashing_misses() {
        // Working set far larger than L1 with a pathological stride keeps
        // missing; this is the mechanism behind the "more threads can hurt"
        // cases in the paper's memory-bound kernels.
        let mut s = sys(1);
        let mut now = 0;
        for round in 0..3 {
            for i in 0..1024u32 {
                now = s.load(0, i * 64, now);
            }
            let _ = round;
        }
        let st = s.stats();
        assert!(st.l1.misses > st.l1.hits);
    }

    // ------------------------------------------------------------------
    // Batched-walk equivalence: `access_batch` must reproduce the scalar
    // per-line sequence exactly, across hit/miss/writeback/contention
    // mixes and from arbitrary warm states.
    // ------------------------------------------------------------------

    #[test]
    fn batch_empty_access_is_one_port_slot() {
        let mut s = sys(1);
        let mut completions = vec![99];
        let out = s.access_batch_into(0, &[], 50, false, &mut completions);
        assert!(completions.is_empty());
        assert_eq!(out, BatchOutcome { completion: 50, port_slots: 1 });
        assert_eq!(s.stats().loads, 0);
    }

    #[test]
    fn batch_matches_scalar_cold_misses() {
        let lines: Vec<u32> = (0..8u32).map(|i| 0x10_0000 + i * 64).collect();
        assert_batch_matches_scalar(&mut sys(1), 0, &lines, 0, false);
    }

    #[test]
    fn batch_matches_scalar_pure_hits() {
        let mut s = sys(1);
        let lines: Vec<u32> = (0..6u32).map(|i| 0x4000 + i * 64).collect();
        for &l in &lines {
            s.load(0, l, 0); // warm both levels
        }
        assert_batch_matches_scalar(&mut s, 0, &lines, 500, false);
    }

    #[test]
    fn batch_matches_scalar_hit_miss_mix() {
        let mut s = sys(1);
        // Warm alternating lines so the batch interleaves hits and misses.
        for i in (0..16u32).step_by(2) {
            s.load(0, 0x20_0000 + i * 64, 0);
        }
        let lines: Vec<u32> = (0..16u32).map(|i| 0x20_0000 + i * 64).collect();
        assert_batch_matches_scalar(&mut s, 0, &lines, 1000, false);
    }

    #[test]
    fn batch_matches_scalar_dirty_writeback_path() {
        let mut s = sys(1);
        let cfg = *s.config();
        let l1_lines = cfg.l1.size_bytes / cfg.l1.line_bytes;
        // Dirty every L1 line, then walk a conflicting working set so the
        // batch displaces dirty victims (the double-booking path).
        let mut now = 0;
        for i in 0..l1_lines {
            now = s.store(0, i * cfg.l1.line_bytes, now);
        }
        let lines: Vec<u32> = (0..24u32).map(|i| 0x100_0000 + i * cfg.l1.size_bytes).collect();
        assert_batch_matches_scalar(&mut s, 0, &lines, now + 100, false);
    }

    #[test]
    fn batch_matches_scalar_store_writebacks() {
        let mut s = sys(1);
        let cfg = *s.config();
        let mut now = 0;
        for i in 0..(cfg.l1.size_bytes / cfg.l1.line_bytes) {
            now = s.store(0, i * cfg.l1.line_bytes, now);
        }
        let lines: Vec<u32> = (0..12u32).map(|i| 0x200_0000 + i * cfg.l1.size_bytes).collect();
        assert_batch_matches_scalar(&mut s, 0, &lines, now + 7, true);
    }

    #[test]
    fn batch_matches_scalar_under_bank_contention() {
        // More lines than L1 banks: the submit cycle advances mid-batch
        // and the DRAM/L2 queues are already loaded by another core.
        let mut s = sys(2);
        for i in 0..40u32 {
            s.load(1, 0x40_0000 + i * 64, 0); // saturate shared queues
        }
        let lines: Vec<u32> =
            (0..MemConfig::default().l1_banks + 9).map(|i| 0x80_0000 + i * 64).collect();
        assert_batch_matches_scalar(&mut s, 0, &lines, 3, false);
    }

    #[test]
    fn batch_matches_scalar_small_bank_count() {
        let config = MemConfig { l1_banks: 2, l2_banks: 1, ..Default::default() };
        let mut s = MemSystem::new(1, config);
        let lines: Vec<u32> = (0..7u32).map(|i| 0x30_0000 + i * 64).collect();
        assert_batch_matches_scalar(&mut s, 0, &lines, 11, false);
    }

    #[test]
    fn span_walk_matches_explicit_line_batch() {
        let mut s = sys(1);
        let lb = s.config().l1.line_bytes;
        // Warm part of the span so hits and misses interleave.
        for i in 0..3u32 {
            s.load(0, 0x50_0000 + i * 2 * lb, 0);
        }
        // A span from mid-line to mid-line, covering six lines.
        let (addr0, addr_last) = (0x50_0000 + 12, 0x50_0000 + 5 * lb + 4);
        let lines: Vec<u32> = (0..6u32).map(|i| 0x50_0000 + i * lb).collect();
        let mut explicit = s.clone();
        let span_out = s.access_span(0, addr0, addr_last, 77, false);
        let explicit_out = explicit.access_batch(0, &lines, 77, false);
        assert_eq!(span_out, explicit_out);
        assert_eq!(s.stats(), explicit.stats());
    }

    #[test]
    fn batch_port_slots_count_bank_groups() {
        let config = MemConfig { l1_banks: 4, ..Default::default() };
        let mut s = MemSystem::new(1, config);
        let mut completions = Vec::new();
        let lines: Vec<u32> = (0..10u32).map(|i| i * 64).collect();
        let out = s.access_batch_into(0, &lines, 0, false, &mut completions);
        assert_eq!(out.port_slots, 3); // ceil(10 / 4)
        assert_eq!(completions.len(), 10);
    }

    // ------------------------------------------------------------------
    // Line-result memo (`l1_line_memo`).
    // ------------------------------------------------------------------

    #[test]
    fn memo_repeated_same_window_hits_agree_but_stats_diverge() {
        let config = MemConfig { l1_line_memo: true, ..Default::default() };
        let mut memoed = MemSystem::new(1, config);
        let mut plain = sys(1);
        let lines = [0x4000u32];
        let mut c1 = Vec::new();
        let mut c2 = Vec::new();
        // Warm the line, then re-access it twice inside one memo window.
        for now in [0, 100, 104] {
            memoed.access_batch_into(0, &lines, now, false, &mut c1);
            plain.access_batch_into(0, &lines, now, false, &mut c2);
            assert_eq!(c1, c2, "memoised completions must not drift at cycle {now}");
        }
        // The memo skipped the third tag walk: one fewer L1 hit recorded.
        // This statistics divergence is why the flag defaults to off.
        assert_eq!(plain.stats().l1.hits, 2);
        assert_eq!(memoed.stats().l1.hits, 1);
    }

    #[test]
    fn memo_expires_across_windows() {
        let config = MemConfig { l1_line_memo: true, ..Default::default() };
        let mut s = MemSystem::new(1, config);
        let lines = [0x4000u32];
        let mut c = Vec::new();
        s.access_batch_into(0, &lines, 0, false, &mut c); // cold fill
        s.access_batch_into(0, &lines, 4, false, &mut c); // hit, memoised
        let w0 = 1u64 << MEMO_WINDOW_SHIFT; // first cycle of the next window
        s.access_batch_into(0, &lines, w0, false, &mut c);
        assert_eq!(c, [w0 + s.config().l1_latency]);
        // The window boundary forced a real tag walk: both hits counted.
        assert_eq!(s.stats().l1.hits, 2);
    }

    #[test]
    fn memo_reset_clears_entries() {
        let config = MemConfig { l1_line_memo: true, ..Default::default() };
        let mut s = MemSystem::new(1, config);
        let mut c = Vec::new();
        s.access_batch_into(0, &[0x4000], 0, false, &mut c);
        s.access_batch_into(0, &[0x4000], 4, false, &mut c);
        s.reset();
        // Post-reset the line is cold again; a memo survivor would have
        // claimed an L1-hit latency.
        s.access_batch_into(0, &[0x4000], 4, false, &mut c);
        assert!(c[0] > 4 + s.config().l1_latency);
    }

    // ------------------------------------------------------------------
    // O(activity) bookkeeping: touched-core lists and port counters.
    // ------------------------------------------------------------------

    #[test]
    fn reset_sweeps_only_touched_l1s() {
        let mut s = sys(256);
        s.load(3, 0x4000, 0); // scalar path marks too
        s.access_batch(200, &[0x8000, 0x8040], 0, false);
        s.access_batch(200, &[0x8000], 10, false); // dedup: still one entry
        s.access_batch(7, &[], 0, false); // empty batch must not mark
        assert_eq!(s.touched_cores(), &[3, 200]);
        assert_eq!(s.reset(), 2);
        assert!(s.touched_cores().is_empty());
        assert_eq!(s.reset(), 0);
        // Stats aggregate over the touched list only; a swept system is
        // indistinguishable from a fresh one.
        assert_eq!(s.stats(), MemSystem::new(256, MemConfig::default()).stats());
    }

    #[test]
    fn port_counters_count_accesses_and_stall_slots() {
        let mut s = sys(4);
        let banks = s.config().l1_banks;
        // One fully-coalesced batch: 1 access, bank group fits → 0 stalls.
        let coalesced: Vec<u32> = (0..banks).map(|i| 0x10_0000 + i * 64).collect();
        s.access_batch(1, &coalesced, 0, false);
        assert_eq!(s.port_counters(1), (1, 0));
        // A batch of 2.5 bank groups serialises into 3 port slots → 2 stalls.
        let wide: Vec<u32> = (0..banks * 5 / 2).map(|i| 0x20_0000 + i * 64).collect();
        s.access_batch(1, &wide, 100, false);
        assert_eq!(s.port_counters(1), (2, 2));
        // Empty batches consume no counters; other cores stay zero.
        s.access_batch(1, &[], 200, false);
        assert_eq!(s.port_counters(1), (2, 2));
        assert_eq!(s.port_counters(0), (0, 0));
        // Totals sum over the touched list; reset clears per-core state.
        s.access_batch(2, &wide, 0, false);
        assert_eq!(s.port_totals(), (3, 4));
        s.reset();
        assert_eq!(s.port_totals(), (0, 0));
        assert_eq!(s.port_counters(1), (0, 0));
    }
}
