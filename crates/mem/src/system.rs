//! The assembled memory hierarchy: per-core L1s, shared L2, one DRAM channel.

use crate::cache::Lookup;
use crate::{Cache, CacheConfig, CacheStats, Cycle, DramChannel, DramConfig};

/// Timing and geometry parameters of the full memory hierarchy.
///
/// The defaults approximate the Vortex FPGA configuration scale: 16 KiB
/// 4-way L1 per core, 256 KiB 8-way shared L2, 64-byte lines, ~100-cycle
/// DRAM with one line per two cycles of bandwidth.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// Per-core L1 data cache geometry.
    pub l1: CacheConfig,
    /// Independent L1 banks: lines a single SIMT access can service per
    /// cycle (uncoalesced accesses serialise over `lines / l1_banks`
    /// cycles, as in Vortex's banked dcache).
    pub l1_banks: u32,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
    /// Independent L2 banks (requests accepted per `l2_interval`).
    pub l2_banks: u32,
    /// L1 hit latency (cycles from issue to writeback).
    pub l1_latency: u64,
    /// Additional latency for an access that hits in L2.
    pub l2_latency: u64,
    /// Minimum cycles between requests accepted by the L2 (bandwidth).
    pub l2_interval: u64,
    /// DRAM channel parameters.
    pub dram: DramConfig,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1: CacheConfig { size_bytes: 16 * 1024, ways: 4, line_bytes: 64 },
            l1_banks: 32,
            l2: CacheConfig { size_bytes: 256 * 1024, ways: 8, line_bytes: 64 },
            l2_banks: 4,
            l1_latency: 2,
            l2_latency: 20,
            l2_interval: 1,
            dram: DramConfig::default(),
        }
    }
}

/// Aggregate statistics over the whole hierarchy.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Load line-requests issued.
    pub loads: u64,
    /// Store line-requests issued.
    pub stores: u64,
    /// L1 counters summed over cores.
    pub l1: CacheStats,
    /// Shared L2 counters.
    pub l2: CacheStats,
    /// Lines serviced by DRAM.
    pub dram_requests: u64,
}

/// The timing model of the memory hierarchy.
///
/// `load` and `store` take a request at an absolute cycle and return the
/// cycle at which the data is available (loads) or the write has drained
/// (stores). Stores are write-through/no-allocate and the requesting warp
/// does not wait for them; their return value only matters for bandwidth
/// accounting.
///
/// # Examples
///
/// ```
/// use vortex_mem::{MemConfig, MemSystem};
/// let mut sys = MemSystem::new(2, MemConfig::default());
/// let t1 = sys.load(0, 0x1000, 0);      // cold: L1 miss, L2 miss, DRAM
/// let t2 = sys.load(0, 0x1000, t1);     // L1 hit
/// let t3 = sys.load(1, 0x1000, t2);     // other core: misses L1, hits L2
/// assert!(t2 - t1 < t3 - t2 && t3 - t2 < t1);
/// ```
#[derive(Clone, Debug)]
pub struct MemSystem {
    config: MemConfig,
    l1s: Vec<Cache>,
    l2: Cache,
    l2_next_slot: Vec<Cycle>,
    dram: DramChannel,
    loads: u64,
    stores: u64,
}

impl MemSystem {
    /// Creates the hierarchy for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if a cache geometry in `config` is invalid.
    pub fn new(num_cores: usize, config: MemConfig) -> Self {
        assert!(config.l2_banks > 0, "L2 needs at least one bank");
        MemSystem {
            config,
            l1s: (0..num_cores).map(|_| Cache::new(config.l1)).collect(),
            l2: Cache::new(config.l2),
            l2_next_slot: vec![0; config.l2_banks as usize],
            dram: DramChannel::new(config.dram),
            loads: 0,
            stores: 0,
        }
    }

    /// The hierarchy parameters.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Line size shared by both cache levels (bytes).
    pub fn line_bytes(&self) -> u32 {
        self.config.l1.line_bytes
    }

    /// Submits a load for the line containing `addr` from `core` at `now`;
    /// returns the completion cycle.
    pub fn load(&mut self, core: usize, addr: u32, now: Cycle) -> Cycle {
        self.loads += 1;
        self.access(core, addr, now, false)
    }

    /// Submits a store for the line containing `addr`; returns the cycle
    /// the line is owned dirty in L1 (write-back, write-allocate — the
    /// requesting warp never waits for stores).
    pub fn store(&mut self, core: usize, addr: u32, now: Cycle) -> Cycle {
        self.stores += 1;
        self.access(core, addr, now, true)
    }

    /// Shared write-back/write-allocate walk. A miss at a level fills from
    /// below; a displaced dirty victim is written back downstream
    /// (consuming bandwidth but not blocking the requester).
    fn access(&mut self, core: usize, addr: u32, now: Cycle, is_store: bool) -> Cycle {
        match self.l1s[core].access(addr, is_store) {
            Lookup::Hit => now + self.config.l1_latency,
            Lookup::Miss { writeback } => {
                if let Some(victim) = writeback {
                    // L1 victim drains into L2 (dirty there), consuming an
                    // L2 bandwidth slot; a dirty L2 victim drains to DRAM.
                    let wb_at = self.l2_slot(now + self.config.l1_latency);
                    if let Lookup::Miss { writeback: Some(_) } = self.l2.access(victim, true) {
                        self.dram.service(wb_at);
                    }
                }
                let at_l2 = self.l2_slot(now + self.config.l1_latency);
                match self.l2.access(addr, false) {
                    Lookup::Hit => at_l2 + self.config.l2_latency,
                    Lookup::Miss { writeback: l2_wb } => {
                        if l2_wb.is_some() {
                            // L2 victim write-back to DRAM (bandwidth only).
                            self.dram.service(at_l2 + self.config.l2_latency);
                        }
                        self.dram.service(at_l2 + self.config.l2_latency)
                    }
                }
            }
        }
    }

    fn l2_slot(&mut self, earliest: Cycle) -> Cycle {
        let slot = self.l2_next_slot.iter_mut().min_by_key(|s| **s).expect("at least one bank");
        let accept = earliest.max(*slot);
        *slot = accept + self.config.l2_interval;
        accept
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> MemStats {
        let mut l1 = CacheStats::default();
        for c in &self.l1s {
            let s = c.stats();
            l1.hits += s.hits;
            l1.misses += s.misses;
            l1.evictions += s.evictions;
        }
        MemStats {
            loads: self.loads,
            stores: self.stores,
            l1,
            l2: self.l2.stats(),
            dram_requests: self.dram.requests(),
        }
    }

    /// Per-core L1 statistics.
    pub fn l1_stats(&self, core: usize) -> CacheStats {
        self.l1s[core].stats()
    }

    /// DRAM service-slot utilisation up to `horizon` (see
    /// [`DramChannel::utilization`]).
    pub fn dram_utilization(&self, horizon: Cycle) -> f64 {
        self.dram.utilization(horizon)
    }

    /// Invalidates caches and clears all timing state and statistics.
    pub fn reset(&mut self) {
        for c in &mut self.l1s {
            c.reset();
        }
        self.l2.reset();
        self.l2_next_slot.fill(0);
        self.dram.reset();
        self.loads = 0;
        self.stores = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: usize) -> MemSystem {
        MemSystem::new(cores, MemConfig::default())
    }

    #[test]
    fn latency_ordering_l1_l2_dram() {
        let mut s = sys(2);
        let cfg = *s.config();
        let cold = s.load(0, 0x4000, 0);
        assert!(cold >= cfg.l1_latency + cfg.l2_latency + cfg.dram.latency);
        let hit = s.load(0, 0x4000, 1000) - 1000;
        assert_eq!(hit, cfg.l1_latency);
        let l2_hit = s.load(1, 0x4000, 2000) - 2000;
        assert_eq!(l2_hit, cfg.l1_latency + cfg.l2_latency);
    }

    #[test]
    fn dram_bandwidth_is_shared_between_cores() {
        let mut s = sys(2);
        // Stream distinct lines from both cores at the same cycle; the
        // completions must spread out by the DRAM interval.
        let mut completions: Vec<u64> =
            (0..64u32).map(|i| s.load((i % 2) as usize, 0x10_0000 + i * 64, 0)).collect();
        completions.sort_unstable();
        // With C channels at one line per `interval`, at most C requests
        // can complete in any `interval`-cycle window.
        let dram = s.config().dram;
        let window = dram.interval;
        let per_window = completions
            .windows(dram.channels as usize + 1)
            .map(|w| w[dram.channels as usize] - w[0])
            .min()
            .unwrap();
        assert!(
            per_window >= window,
            "more than {} completions per {window} cycles",
            dram.channels
        );
    }

    #[test]
    fn stores_allocate_and_absorb() {
        let mut s = sys(1);
        s.store(0, 0x8000, 0);
        // Write-allocate: a following load hits L1.
        let t = s.load(0, 0x8000, 100);
        assert_eq!(t - 100, s.config().l1_latency);
        // Repeated stores to the hot line are absorbed (no extra DRAM
        // traffic beyond the original fill).
        let before = s.stats().dram_requests;
        for i in 0..16 {
            s.store(0, 0x8000 + i * 4, 200 + u64::from(i));
        }
        assert_eq!(s.stats().dram_requests, before);
    }

    #[test]
    fn dirty_evictions_write_back() {
        let mut s = sys(1);
        // Dirty many distinct lines, far exceeding L1 capacity, then
        // observe DRAM write-back traffic beyond the fills.
        let lines = 16 * 1024; // 4x the 256KiB L2 at 64B lines
        let mut now = 0;
        for i in 0..lines {
            now = s.store(0, i * 64, now);
        }
        let st = s.stats();
        // Every fill reaches DRAM (cold, too big for L2 as well), and
        // dirty victims add write-back requests on top.
        assert!(
            st.dram_requests > u64::from(lines),
            "write-backs add DRAM traffic: {} vs {} fills",
            st.dram_requests,
            lines
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut s = sys(1);
        s.load(0, 0, 0);
        s.load(0, 0, 10);
        s.store(0, 64, 20);
        let st = s.stats();
        assert_eq!(st.loads, 2);
        assert_eq!(st.stores, 1);
        assert_eq!(st.l1.hits, 1);
        assert!(st.dram_requests >= 2); // one load fill + one store drain
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut s = sys(1);
        let cold1 = s.load(0, 0, 0);
        s.reset();
        let cold2 = s.load(0, 0, 0);
        assert_eq!(cold1, cold2);
        assert_eq!(s.stats().loads, 1);
    }

    #[test]
    fn capacity_thrashing_misses() {
        // Working set far larger than L1 with a pathological stride keeps
        // missing; this is the mechanism behind the "more threads can hurt"
        // cases in the paper's memory-bound kernels.
        let mut s = sys(1);
        let mut now = 0;
        for round in 0..3 {
            for i in 0..1024u32 {
                now = s.load(0, i * 64, now);
            }
            let _ = round;
        }
        let st = s.stats();
        assert!(st.l1.misses > st.l1.hits);
    }
}
