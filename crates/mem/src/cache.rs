//! Tag-only set-associative cache timing model.

use std::fmt;

/// Geometry of one cache level.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (ways per set). Must divide `size_bytes / line_bytes`.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u32 {
        self.size_bytes / self.line_bytes / self.ways
    }

    /// Validates the geometry (power-of-two line and set count, non-zero).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when invalid; configurations are
    /// static inputs, so a panic is the appropriate failure mode.
    pub fn validate(&self) {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.ways > 0, "cache must have at least one way");
        assert!(
            self.size_bytes.is_multiple_of(self.line_bytes * self.ways),
            "cache size must be a multiple of ways*line"
        );
        let sets = self.sets();
        assert!(sets > 0, "cache must have at least one set");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
    }
}

/// Hit/miss counters for one cache.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (including cold misses).
    pub misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Adds `other`'s counters into `self` (aggregation across caches or
    /// runs).
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in 0..=1 (0 when there were no accesses).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate)",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0
        )
    }
}

#[derive(Copy, Clone, Debug)]
struct Way {
    tag: u32,
    valid: bool,
    dirty: bool,
    lru_stamp: u64,
}

/// Precomputed shift/mask forms of a validated [`CacheConfig`] geometry.
///
/// The batch walk of [`MemSystem`](crate::MemSystem) copies this small
/// header into locals once per SIMT access, so the per-line index math
/// (`addr >> line_shift`) reads registers instead of re-deriving the
/// geometry — or re-loading it through `&mut Cache` — on every line.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    /// `log2(line_bytes)`: shifts a byte address to its line id.
    pub line_shift: u32,
    /// `sets - 1`: masks a line id to its set index.
    pub set_mask: u32,
    /// `log2(sets)`: shifts a line id to its tag.
    pub set_shift: u32,
}

impl CacheGeometry {
    /// The line id containing byte address `addr`.
    #[inline]
    pub fn line_of(&self, addr: u32) -> u32 {
        addr >> self.line_shift
    }
}

/// Result of a cache lookup with fill-on-miss.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// The line was resident.
    Hit,
    /// The line was filled. `writeback` holds the base address of a dirty
    /// victim that must be written downstream, if one was displaced.
    Miss {
        /// Base address of the displaced dirty line, if any.
        writeback: Option<u32>,
    },
}

impl Lookup {
    /// Whether this lookup hit.
    pub fn is_hit(self) -> bool {
        matches!(self, Lookup::Hit)
    }
}

/// A tag-only, LRU, set-associative cache.
///
/// The cache stores no data — the architectural state lives in
/// [`MainMemory`](crate::MainMemory) — it only answers "would this access
/// hit?", updating tags and LRU state as a side effect.
///
/// # Examples
///
/// ```
/// use vortex_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64 });
/// assert!(!c.access(0x0, false).is_hit());  // cold miss
/// assert!(c.access(0x4, false).is_hit());   // same line: hit
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    ways: Vec<Way>,
    tick: u64,
    stats: CacheStats,
    // Shift/mask forms of the (validated power-of-two) geometry, so the
    // per-access index math never pays an integer division.
    line_shift: u32,
    set_mask: u32,
    set_shift: u32,
    /// Most-recently-hit line and its way index: streaming SIMT accesses
    /// hit the same line back-to-back, so this skips the set walk on the
    /// common path. `u64::MAX` means "no MRU entry" (a `u64` so the
    /// sentinel cannot collide with any real 32-bit line id).
    mru_line: u64,
    mru_way: u32,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        let entries = (config.sets() * config.ways) as usize;
        Cache {
            config,
            ways: vec![Way { tag: 0, valid: false, dirty: false, lru_stamp: 0 }; entries],
            tick: 0,
            stats: CacheStats::default(),
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: config.sets() - 1,
            set_shift: config.sets().trailing_zeros(),
            mru_line: u64::MAX,
            mru_way: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The precomputed shift/mask geometry header (see [`CacheGeometry`]).
    pub fn geometry(&self) -> CacheGeometry {
        CacheGeometry {
            line_shift: self.line_shift,
            set_mask: self.set_mask,
            set_shift: self.set_shift,
        }
    }

    /// Looks up the line containing `addr`, filling it on a miss
    /// (write-allocate). `is_store` marks the line dirty (write-back).
    #[inline]
    pub fn access(&mut self, addr: u32, is_store: bool) -> Lookup {
        self.access_line(addr >> self.line_shift, is_store)
    }

    /// [`access`](Cache::access) for a pre-shifted line id
    /// (`geometry().line_of(addr)`) — the batch walk derives the id once
    /// against the hoisted [`CacheGeometry`] header instead of re-reading
    /// the shift through `&mut self` per line.
    ///
    /// The lookup runs in two separated phases: the hot *tag-walk* phase
    /// (MRU way first, then the set scan) stays small and inlinable; the
    /// cold *fill* phase (victim choice, write-back extraction, tag
    /// install) is a separate out-of-line function.
    #[inline]
    pub fn access_line(&mut self, line: u32, is_store: bool) -> Lookup {
        self.tick += 1;
        if u64::from(line) == self.mru_line {
            // Back-to-back access to the same line: the way index is known
            // and still valid (any eviction of it would have gone through
            // the fill phase below, which updates the MRU entry).
            let way = &mut self.ways[self.mru_way as usize];
            way.lru_stamp = self.tick;
            way.dirty |= is_store;
            self.stats.hits += 1;
            return Lookup::Hit;
        }
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        let ways = self.config.ways as usize;
        let base = set * ways;
        let slots = &mut self.ways[base..base + ways];
        if let Some(pos) = slots.iter().position(|w| w.valid && w.tag == tag) {
            let way = &mut slots[pos];
            way.lru_stamp = self.tick;
            way.dirty |= is_store;
            self.stats.hits += 1;
            self.mru_line = u64::from(line);
            self.mru_way = (base + pos) as u32;
            return Lookup::Hit;
        }
        self.fill(line, set, tag, is_store)
    }

    /// Fill phase of a miss: victim selection, dirty write-back address
    /// extraction, tag install, MRU update. Out of line so the tag-walk
    /// phase above compiles to a compact loop.
    fn fill(&mut self, line: u32, set: usize, tag: u32, is_store: bool) -> Lookup {
        self.stats.misses += 1;
        let ways = self.config.ways as usize;
        let base = set * ways;
        let slots = &mut self.ways[base..base + ways];
        // Choose victim: first invalid way, else LRU.
        let pos = match slots.iter().position(|w| !w.valid) {
            Some(p) => p,
            None => {
                self.stats.evictions += 1;
                slots.iter().enumerate().min_by_key(|(_, w)| w.lru_stamp).expect("ways > 0").0
            }
        };
        let victim = &mut slots[pos];
        let writeback = if victim.valid && victim.dirty {
            let victim_line = (victim.tag << self.set_shift) + set as u32;
            Some(victim_line << self.line_shift)
        } else {
            None
        };
        victim.tag = tag;
        victim.valid = true;
        victim.dirty = is_store;
        victim.lru_stamp = self.tick;
        // The filled way is the new most-recent line; this also retires any
        // stale MRU entry that aliased the evicted slot.
        self.mru_line = u64::from(line);
        self.mru_way = (base + pos) as u32;
        Lookup::Miss { writeback }
    }

    /// Checks whether the line containing `addr` is resident, without
    /// updating any state.
    pub fn probe(&self, addr: u32) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        let ways = self.config.ways as usize;
        self.ways[set * ways..(set + 1) * ways].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates all lines and clears statistics. Every access bumps
    /// the internal `tick` before touching anything else, so a cache
    /// still at tick 0 holds only construction state and the O(ways)
    /// sweep is skipped; the return value reports whether any work was
    /// done (the O(touched-state) reset contract).
    pub fn reset(&mut self) -> bool {
        if self.tick == 0 {
            return false;
        }
        for w in &mut self.ways {
            w.valid = false;
            w.dirty = false;
        }
        self.tick = 0;
        self.stats = CacheStats::default();
        self.mru_line = u64::MAX;
        self.mru_way = 0;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 16B lines = 64B
        Cache::new(CacheConfig { size_bytes: 64, ways: 2, line_bytes: 16 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false).is_hit());
        assert!(c.access(0, false).is_hit());
        assert!(c.access(15, false).is_hit());
        assert!(!c.access(16, false).is_hit()); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Set 0 holds lines with (line % 2 == 0): addresses 0, 32, 64...
        c.access(0, false); // A
        c.access(32, false); // B
        c.access(0, false); // A refreshed
        c.access(64, false); // C evicts B (LRU)
        assert!(c.probe(0), "A stays");
        assert!(!c.probe(32), "B evicted");
        assert!(c.probe(64), "C resident");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn dirty_eviction_reports_victim_address() {
        let mut c = tiny();
        assert_eq!(c.access(0, true), Lookup::Miss { writeback: None });
        c.access(32, false); // clean B in the same set
                             // Evict A (dirty) by filling C in set 0.
        let l = c.access(64, false);
        assert_eq!(l, Lookup::Miss { writeback: Some(0) });
        // B is now LRU; evicting it is clean.
        let l = c.access(96, false);
        assert_eq!(l, Lookup::Miss { writeback: None });
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, false); // clean fill
        c.access(0, true); // dirtied by store hit
        c.access(32, false);
        let l = c.access(64, false); // evicts A which is dirty
        assert_eq!(l, Lookup::Miss { writeback: Some(0) });
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0, false); // set 0
        c.access(16, false); // set 1
        assert!(c.probe(0));
        assert!(c.probe(16));
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = tiny();
        c.access(0, false);
        let before = c.stats();
        assert!(c.probe(0));
        assert!(!c.probe(999_999));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0, true);
        c.reset();
        assert!(!c.probe(0));
        assert_eq!(c.stats().accesses(), 0);
        // After reset the refill eviction is clean.
        c.access(0, false);
        c.access(32, false);
        assert_eq!(c.access(64, false), Lookup::Miss { writeback: None });
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_geometry_panics() {
        Cache::new(CacheConfig { size_bytes: 60, ways: 2, line_bytes: 15 });
    }

    #[test]
    fn hit_rate_tracks() {
        let mut c = tiny();
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
