//! Quickstart: run one kernel under the paper's three mapping policies
//! and see the runtime lws tuner (Eq. 1) win.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vortex_gpgpu::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example: a 128-element vector addition on a
    // 1-core, 2-warp, 4-thread device (hp = 8).
    let config = DeviceConfig::with_topology(1, 2, 4);
    let hp = config.hardware_parallelism();
    println!("device {}  (hardware parallelism hp = {hp})", config.topology_name());

    let gws = 128;
    println!("kernel vecadd, gws = {gws}  =>  Eq.1 lws = {}\n", optimal_lws(gws, hp));

    let mut table = Table::new(vec!["policy", "lws", "scenario", "rounds", "cycles"]);
    for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
        let mut kernel = VecAdd::new(gws);
        let outcome = run_kernel(&mut kernel, &config, policy)?;
        let report = &outcome.reports[0];
        table.row(vec![
            policy.to_string(),
            report.lws.to_string(),
            format!("{:?}", report.scenario),
            report.rounds.to_string(),
            outcome.cycles.to_string(),
        ]);
    }
    println!("{}", table.to_text());
    println!("every run is verified against the host reference before being reported.");
    Ok(())
}
