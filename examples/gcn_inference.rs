//! End-to-end GCN layer inference on the GPGPU — the paper's most complex
//! workload (graph aggregation + dense transform, two device launches),
//! on a synthetic cora-like citation graph.
//!
//! ```text
//! cargo run --release --example gcn_inference
//! ```

use vortex_gpgpu::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = DeviceConfig::with_topology(4, 8, 8);
    println!(
        "GCN layer (cora-like graph: 512 nodes, ~2048 edges, hidden size 16) on {}\n",
        config.topology_name()
    );

    let mut table =
        Table::new(vec!["policy", "aggr lws", "dense lws", "total cycles", "dram util"]);
    for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
        let mut layer = GcnLayer::sweep();
        let outcome = run_kernel(&mut layer, &config, policy)?;
        table.row(vec![
            policy.to_string(),
            outcome.reports[0].lws.to_string(),
            outcome.reports[1].lws.to_string(),
            outcome.cycles.to_string(),
            format!("{:.2}", outcome.dram_utilization),
        ]);
    }
    println!("{}", table.to_text());

    // The aggregation alone, which the paper singles out as "atypical":
    // irregular per-lane neighbour counts cause SIMT load imbalance, so
    // mapping more items onto one thread (large lws) mixes rows of very
    // different degree into the same warp.
    println!("aggregation phase alone (the paper's atypical kernel):");
    let mut table = Table::new(vec!["policy", "cycles"]);
    for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
        let mut aggr = GcnAggr::sweep();
        let outcome = run_kernel(&mut aggr, &config, policy)?;
        table.row(vec![policy.to_string(), outcome.cycles.to_string()]);
    }
    println!("{}", table.to_text());
    println!("results verified against the host reference on every run.");
    Ok(())
}
