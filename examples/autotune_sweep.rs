//! Autotune sweep: how does the optimal `lws` move with the hardware?
//!
//! Sweeps one kernel across increasingly parallel devices and compares the
//! paper's runtime policy (Eq. 1) against an exhaustive lws search —
//! showing both that the policy adapts, and how close to oracle it lands.
//!
//! ```text
//! cargo run --release --example autotune_sweep
//! ```

use vortex_gpgpu::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gws = 4096;
    let topologies = ["1c2w2t", "1c4w8t", "2c8w8t", "4c8w16t", "16c16w16t", "64c32w32t"];

    let mut table = Table::new(vec![
        "device",
        "hp",
        "Eq.1 lws",
        "auto cycles",
        "oracle lws",
        "oracle cycles",
        "auto/oracle",
    ]);

    for topo in topologies {
        let config: DeviceConfig = topo.parse()?;
        let hp = config.hardware_parallelism();

        // The paper's runtime policy.
        let mut kernel = Saxpy::new(gws);
        let auto = run_kernel(&mut kernel, &config, LwsPolicy::Auto)?;
        let auto_lws = auto.reports[0].lws;

        // Oracle: exhaustive search over the candidate lws set.
        let oracle = oracle_search(gws, &config, |lws| {
            let mut kernel = Saxpy::new(gws);
            run_kernel(&mut kernel, &config, LwsPolicy::Explicit(lws)).expect("oracle run").cycles
        });

        table.row(vec![
            topo.to_owned(),
            hp.to_string(),
            auto_lws.to_string(),
            auto.cycles.to_string(),
            oracle.lws.to_string(),
            oracle.cycles.to_string(),
            format!("{:.2}x", auto.cycles as f64 / oracle.cycles as f64),
        ]);
    }
    println!("saxpy, gws = {gws}: runtime policy (Eq. 1) vs oracle lws\n");
    println!("{}", table.to_text());
    println!("Eq.1 needs no search and no programmer input — it reads hp from the device.");
    Ok(())
}
