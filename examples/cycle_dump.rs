//! Dumps cycles, counters and memory statistics for a grid of
//! (kernel, configuration, policy) runs. Used to check bit-identical
//! timing across simulator implementations:
//!
//! ```text
//! cargo run --release --example cycle_dump > cycles.txt
//! ```
//!
//! The default grid (11 kernels × 6 topologies × 3 policies = 198 rows;
//! the reduction rides at the end so the first 180 rows stay diffable
//! against pre-PR10 dumps) is frozen so dumps diff cleanly across PRs.
//! Flags (any order, any combination):
//!
//! * `extended` appends a **cache-thrashing** section: the same policies
//!   over a deliberately under-sized memory hierarchy (1 KiB
//!   direct-mapped L1, 8 KiB L2, 2 L1 banks), which keeps the
//!   miss/writeback/bank-contention legs of the batched memory walk
//!   hot — paths the default geometry rarely exercises. CI's
//!   determinism gate runs the extended grid.
//! * `bigtopo` appends a **big-topology** section (256-core flat and
//!   clustered rows, plus a 16-core 4×4 clustered row) exercising the
//!   O(activity) scheduler at scale. Behind its own flag so the
//!   base+extended prefix stays diffable against dumps from before the
//!   section existed.
//! * `clustered` reruns whatever grid the other flags select with
//!   cores-per-cluster 4 under the **flat labels**: clustering is
//!   timing-transparent by construction, so
//!   `diff <(cycle_dump extended) <(cycle_dump extended clustered)`
//!   must be empty — CI pins exactly that.
//! * `replay` reruns whatever grid the other flags select through the
//!   record/replay engine: every row is executed once under a trace
//!   recorder, the trace round-trips through the on-disk codec, and the
//!   **replayed** outcome is printed under the same format — so
//!   `diff <(cycle_dump extended) <(cycle_dump extended replay)` must
//!   be empty, or replay has drifted from execute semantics. CI pins
//!   exactly that, with block fusion on and off.

use vortex_gpgpu::prelude::*;
use vortex_gpgpu::sim::{CacheConfig, MemConfig};
use vortex_gpgpu::trace::{decode_trace, encode_trace};
use vortex_kernels::{
    record_kernel_prepared, replay_kernel_prepared, Kernel, KernelError, Reduce, RunOutcome,
};

fn kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(VecAdd::new(128)),
        Box::new(VecAdd::new(4096)),
        Box::new(Relu::new(1000)),
        Box::new(Saxpy::new(777)),
        Box::new(Sgemm::new(24, 8, 16)),
        Box::new(Gauss::new(24, 5)),
        Box::new(Knn::new(500)),
        Box::new(GcnAggr::new(64, 256, 8)),
        Box::new(GcnLayer::new(64, 256, 8)),
        Box::new(ResnetLayer::new(6, 4, 8, 2)),
        Box::new(Reduce::new(1000)),
    ]
}

/// An under-sized hierarchy that thrashes on every paper kernel.
fn thrash_mem() -> MemConfig {
    MemConfig {
        l1: CacheConfig { size_bytes: 1024, ways: 1, line_bytes: 64 },
        l1_banks: 2,
        l2: CacheConfig { size_bytes: 8 * 1024, ways: 2, line_bytes: 64 },
        l2_banks: 2,
        ..MemConfig::default()
    }
}

/// Record the row once, round-trip the trace through the on-disk codec,
/// then replay it on a fresh runtime. Returns the **replayed** outcome,
/// after asserting it is bit-identical to the executed one — so a dump
/// in replay mode both self-checks and diffs clean against execute mode.
fn run_row_replayed(
    kernel: &mut dyn Kernel,
    config: &DeviceConfig,
    policy: LwsPolicy,
) -> Result<RunOutcome, KernelError> {
    let program = kernel.build()?;
    let mut rt = Runtime::new(*config);
    rt.load_program(&program);
    let (executed, rec) = record_kernel_prepared(kernel, &program, &mut rt, policy)?;
    let bytes = encode_trace(0, &rec);
    let (_, decoded) = decode_trace(&bytes).expect("recorded trace must survive its own codec");
    assert_eq!(decoded, rec, "codec round-trip must be lossless");
    let mut rt = Runtime::new(*config);
    rt.load_program(&program);
    let replayed = replay_kernel_prepared(kernel, &program, &mut rt, policy, &decoded)?;
    assert_eq!(
        format!("{executed:?}"),
        format!("{replayed:?}"),
        "replay diverged from execute for {} under {policy}",
        kernel.name()
    );
    Ok(replayed)
}

fn replay_mode() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| std::env::args().skip(1).any(|a| a == "replay"))
}

fn dump(label: &str, kernel: &mut dyn Kernel, config: &DeviceConfig, policy: LwsPolicy) {
    let out: Result<RunOutcome, KernelError> = if replay_mode() {
        run_row_replayed(kernel, config, policy)
    } else {
        run_kernel(kernel, config, policy)
    };
    match out {
        Ok(o) => {
            let c = o.reports.iter().map(|r| r.cycles).collect::<Vec<_>>();
            println!(
                "{} {} {} cycles={} phase_cycles={c:?} instr={} lanes={} mem={:?} util={:.12}",
                kernel.name(),
                label,
                policy,
                o.cycles,
                o.instructions,
                o.reports.iter().map(|r| r.instructions).sum::<u64>(),
                o.mem,
                o.dram_utilization,
            );
        }
        Err(e) => println!("{} {} {} ERROR {e}", kernel.name(), label, policy),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let extended = args.iter().any(|a| a == "extended");
    let bigtopo = args.iter().any(|a| a == "bigtopo");
    let clustered = args.iter().any(|a| a == "clustered");
    // Under `clustered`, regroup every still-flat config into clusters of
    // 4 while keeping the label the caller printed — the dump must not
    // change by a single byte.
    let cluster = |c: DeviceConfig| {
        if clustered && c.cores_per_cluster == 1 {
            c.with_clustering(4)
        } else {
            c
        }
    };
    let configs: Vec<DeviceConfig> =
        ["1c2w4t", "1c4w8t", "2c2w2t", "4c8w16t", "3c5w7t", "16c16w16t"]
            .iter()
            .map(|s| s.parse().expect("valid topology"))
            .collect();
    for mut kernel in kernels() {
        for config in &configs {
            let run_config = cluster(*config);
            for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
                dump(&config.topology_name(), kernel.as_mut(), &run_config, policy);
            }
        }
    }
    if extended {
        // Cache-thrashing section: small topologies are enough — the
        // point is the memory walk, not the scheduler.
        for mut kernel in kernels() {
            for topo in ["1c2w4t", "2c4w8t"] {
                let mut config: DeviceConfig = topo.parse().expect("valid topology");
                config.mem = thrash_mem();
                let config = cluster(config);
                for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
                    dump(&format!("thrash-{topo}"), kernel.as_mut(), &config, policy);
                }
            }
        }
    }
    if bigtopo {
        // Big-topology section: 256 cores flat, the same 256 cores in
        // 16-core clusters, and the default sweep's largest topology in
        // 4-core clusters. The x-suffix rows carry their own labels, so
        // within one dump a clustered row must match its flat twin on
        // every column after the label — and the whole section must be
        // identical with and without the global `clustered` flag.
        for mut kernel in kernels() {
            for topo in ["256c4w8t", "256c4w8tx16", "16c16w16tx4"] {
                let config: DeviceConfig = topo.parse().expect("valid topology");
                let config = cluster(config);
                for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
                    dump(&format!("big-{topo}"), kernel.as_mut(), &config, policy);
                }
            }
        }
    }
}
