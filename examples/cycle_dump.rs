//! Dumps cycles, counters and memory statistics for a grid of
//! (kernel, configuration, policy) runs. Used to check bit-identical
//! timing across simulator implementations:
//!
//! ```text
//! cargo run --release --example cycle_dump > cycles.txt
//! ```

use vortex_gpgpu::prelude::*;
use vortex_kernels::{Kernel, KernelError, RunOutcome};

fn kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(VecAdd::new(128)),
        Box::new(VecAdd::new(4096)),
        Box::new(Relu::new(1000)),
        Box::new(Saxpy::new(777)),
        Box::new(Sgemm::new(24, 8, 16)),
        Box::new(Gauss::new(24, 5)),
        Box::new(Knn::new(500)),
        Box::new(GcnAggr::new(64, 256, 8)),
        Box::new(GcnLayer::new(64, 256, 8)),
        Box::new(ResnetLayer::new(6, 4, 8, 2)),
    ]
}

fn main() {
    let configs: Vec<DeviceConfig> =
        ["1c2w4t", "1c4w8t", "2c2w2t", "4c8w16t", "3c5w7t", "16c16w16t"]
            .iter()
            .map(|s| s.parse().expect("valid topology"))
            .collect();
    for mut kernel in kernels() {
        for config in &configs {
            for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
                let out: Result<RunOutcome, KernelError> =
                    run_kernel(kernel.as_mut(), config, policy);
                match out {
                    Ok(o) => {
                        let c = o.reports.iter().map(|r| r.cycles).collect::<Vec<_>>();
                        println!(
                            "{} {} {} cycles={} phase_cycles={c:?} instr={} lanes={} mem={:?} util={:.12}",
                            kernel.name(),
                            config.topology_name(),
                            policy,
                            o.cycles,
                            o.instructions,
                            o.reports.iter().map(|r| r.instructions).sum::<u64>(),
                            o.mem,
                            o.dram_utilization,
                        );
                    }
                    Err(e) => println!(
                        "{} {} {} ERROR {e}",
                        kernel.name(),
                        config.topology_name(),
                        policy
                    ),
                }
            }
        }
    }
}
