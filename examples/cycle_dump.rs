//! Dumps cycles, counters and memory statistics for a grid of
//! (kernel, configuration, policy) runs. Used to check bit-identical
//! timing across simulator implementations:
//!
//! ```text
//! cargo run --release --example cycle_dump > cycles.txt
//! ```
//!
//! The default grid (10 kernels × 6 topologies × 3 policies = 180 rows)
//! is frozen so dumps diff cleanly across PRs. `cycle_dump extended`
//! appends a **cache-thrashing** section on top: the same policies over
//! a deliberately under-sized memory hierarchy (1 KiB direct-mapped L1,
//! 8 KiB L2, 2 L1 banks), which keeps the miss/writeback/bank-contention
//! legs of the batched memory walk hot — paths the default geometry
//! rarely exercises. CI's determinism gate runs the extended grid.

use vortex_gpgpu::prelude::*;
use vortex_gpgpu::sim::{CacheConfig, MemConfig};
use vortex_kernels::{Kernel, KernelError, RunOutcome};

fn kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(VecAdd::new(128)),
        Box::new(VecAdd::new(4096)),
        Box::new(Relu::new(1000)),
        Box::new(Saxpy::new(777)),
        Box::new(Sgemm::new(24, 8, 16)),
        Box::new(Gauss::new(24, 5)),
        Box::new(Knn::new(500)),
        Box::new(GcnAggr::new(64, 256, 8)),
        Box::new(GcnLayer::new(64, 256, 8)),
        Box::new(ResnetLayer::new(6, 4, 8, 2)),
    ]
}

/// An under-sized hierarchy that thrashes on every paper kernel.
fn thrash_mem() -> MemConfig {
    MemConfig {
        l1: CacheConfig { size_bytes: 1024, ways: 1, line_bytes: 64 },
        l1_banks: 2,
        l2: CacheConfig { size_bytes: 8 * 1024, ways: 2, line_bytes: 64 },
        l2_banks: 2,
        ..MemConfig::default()
    }
}

fn dump(label: &str, kernel: &mut dyn Kernel, config: &DeviceConfig, policy: LwsPolicy) {
    let out: Result<RunOutcome, KernelError> = run_kernel(kernel, config, policy);
    match out {
        Ok(o) => {
            let c = o.reports.iter().map(|r| r.cycles).collect::<Vec<_>>();
            println!(
                "{} {} {} cycles={} phase_cycles={c:?} instr={} lanes={} mem={:?} util={:.12}",
                kernel.name(),
                label,
                policy,
                o.cycles,
                o.instructions,
                o.reports.iter().map(|r| r.instructions).sum::<u64>(),
                o.mem,
                o.dram_utilization,
            );
        }
        Err(e) => println!("{} {} {} ERROR {e}", kernel.name(), label, policy),
    }
}

fn main() {
    let extended = std::env::args().nth(1).as_deref() == Some("extended");
    let configs: Vec<DeviceConfig> =
        ["1c2w4t", "1c4w8t", "2c2w2t", "4c8w16t", "3c5w7t", "16c16w16t"]
            .iter()
            .map(|s| s.parse().expect("valid topology"))
            .collect();
    for mut kernel in kernels() {
        for config in &configs {
            for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
                dump(&config.topology_name(), kernel.as_mut(), config, policy);
            }
        }
    }
    if extended {
        // Cache-thrashing section: small topologies are enough — the
        // point is the memory walk, not the scheduler.
        for mut kernel in kernels() {
            for topo in ["1c2w4t", "2c4w8t"] {
                let mut config: DeviceConfig = topo.parse().expect("valid topology");
                config.mem = thrash_mem();
                for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
                    dump(&format!("thrash-{topo}"), kernel.as_mut(), &config, policy);
                }
            }
        }
    }
}
