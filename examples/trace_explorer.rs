//! Trace explorer: capture an execution trace (the paper's Fig. 1 raw
//! material) and inspect it — per-warp timelines, section breakdown,
//! dispatch rounds, lane utilisation.
//!
//! ```text
//! cargo run --release --example trace_explorer
//! cargo run --release --example trace_explorer -- 4c2w8t 256 8
//! ```
//!
//! Positional arguments: `[topology] [gws] [lws]`.

use vortex_gpgpu::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config: DeviceConfig = args.first().map_or("1c2w4t", String::as_str).parse()?;
    let gws: u32 = args.get(1).map_or(Ok(128), |s| s.parse())?;
    let lws: u32 = args
        .get(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or_else(|| optimal_lws(gws, config.hardware_parallelism()));

    println!("tracing vecadd gws={gws} lws={lws} on {}\n", config.topology_name());

    let mut kernel = VecAdd::new(gws);
    let program = kernel.build()?;
    let mut sink = VecTraceSink::new();
    let outcome =
        run_kernel_traced(&mut kernel, &config, LwsPolicy::Explicit(lws), Some(&mut sink))?;
    let trace = Trace::from_sink(sink);

    // Per-core timelines (the Fig. 1 panels).
    for core in trace.cores() {
        let timeline = render_timeline(
            &trace,
            &program,
            core,
            &format!("vecadd lws={lws}"),
            TimelineOptions::default(),
        );
        println!("{timeline}");
    }

    // Aggregate statistics.
    let stats = TraceStats::compute(&trace, &program);
    println!("issues            : {}", stats.instructions);
    println!("span              : {} cycles (total run {} cycles)", stats.duration, outcome.cycles);
    println!("dispatch rounds   : {} wspawns, {} barriers", stats.wspawns, stats.barriers);
    println!("body instructions : {:.1}%", stats.body_fraction() * 100.0);
    println!("mapping overhead  : {:.1}%", stats.overhead_fraction() * 100.0);
    println!("lane utilisation  : {:.2}", trace.lane_utilization(config.threads));
    println!("\nper-section issue counts:");
    for (section, count) in &stats.per_section {
        println!("  {section:<10} {count}");
    }
    Ok(())
}
