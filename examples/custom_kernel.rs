//! Writing your own kernel against the public API — the path a
//! downstream user takes to run *new* workloads under the runtime lws
//! tuner.
//!
//! Implements `axpb`: `y[g] = a·x[g] + b`, from scratch:
//!
//! 1. emit the per-item body through the POCL-style harness,
//! 2. implement the [`Kernel`] trait (build / phases / setup / verify),
//! 3. run it under all three mapping policies on any device shape.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use vortex_gpgpu::asm::Program;
use vortex_gpgpu::core::{Buffer, LaunchError};
use vortex_gpgpu::isa::{fregs, reg};
use vortex_gpgpu::kernels::harness::{build_single, BodyCtx};
use vortex_gpgpu::kernels::{PhaseSpec, VerifyError};
use vortex_gpgpu::prelude::*;

/// `y[g] = a * x[g] + b` over `n` elements.
///
/// Argument block: `[x_ptr, y_ptr, a_bits, b_bits]`.
struct Axpb {
    n: u32,
    a: f32,
    b: f32,
    x: Vec<f32>,
    out: Option<Buffer>,
}

impl Axpb {
    fn new(n: u32) -> Self {
        // Any deterministic input works; reuse the data helpers.
        let x = vortex_gpgpu::kernels::data::uniform_f32(0xABCD, n as usize, -2.0, 2.0);
        Axpb { n, a: 3.0, b: -0.5, x, out: None }
    }

    fn reference(&self) -> Vec<f32> {
        self.x.iter().map(|&x| self.a.mul_add(x, self.b)).collect()
    }
}

impl Kernel for Axpb {
    fn name(&self) -> &'static str {
        "axpb"
    }

    fn build(&self) -> Result<Program, vortex_gpgpu::asm::AsmError> {
        build_single("axpb", |a, ctx: BodyCtx| {
            use fregs::*;
            use reg::*;
            // The harness provides: ctx.item = global index, ctx.args =
            // argument-block pointer. Scratch: t0-t6, a0-a4, all f-regs.
            a.lw(T0, 0, ctx.args); // x
            a.lw(T1, 4, ctx.args); // y
            a.lw(T2, 8, ctx.args); // a bits
            a.fmv_w_x(FA0, T2);
            a.lw(T2, 12, ctx.args); // b bits
            a.fmv_w_x(FA1, T2);
            a.slli(T3, ctx.item, 2);
            a.add(T0, T0, T3);
            a.flw(FT0, 0, T0);
            a.fmadd_s(FT1, FA0, FT0, FA1); // a*x + b
            a.add(T1, T1, T3);
            a.fsw(FT1, 0, T1);
        })
    }

    fn phases(&self) -> Vec<PhaseSpec> {
        vec![PhaseSpec::new("axpb", self.n)]
    }

    fn setup(&mut self, rt: &mut Runtime) -> Result<(), LaunchError> {
        let x = rt.alloc_f32(&self.x)?;
        let y = rt.alloc(self.n * 4)?;
        rt.set_args(&[x.addr, y.addr, self.a.to_bits(), self.b.to_bits()]);
        self.out = Some(y);
        Ok(())
    }

    fn verify(&self, rt: &Runtime) -> Result<(), VerifyError> {
        let out = self.out.expect("setup ran");
        let actual = rt.read_f32(out);
        for (i, (e, a)) in self.reference().iter().zip(&actual).enumerate() {
            if (e - a).abs() > 1e-5 {
                return Err(VerifyError::Mismatch {
                    kernel: "axpb",
                    index: i,
                    expected: *e,
                    actual: *a,
                });
            }
        }
        Ok(())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = DeviceConfig::with_topology(2, 4, 8);
    println!("custom kernel `axpb` (gws=2048) on {}\n", config.topology_name());

    let mut table = Table::new(vec!["policy", "lws", "cycles"]);
    for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
        let mut kernel = Axpb::new(2048);
        let outcome = run_kernel(&mut kernel, &config, policy)?;
        table.row(vec![
            policy.to_string(),
            outcome.reports[0].lws.to_string(),
            outcome.cycles.to_string(),
        ]);
    }
    println!("{}", table.to_text());
    println!("the kernel was verified element-by-element against its host reference.");
    Ok(())
}
