//! # vortex-gpgpu
//!
//! A from-scratch Rust reproduction of *"Optimising GPGPU Execution
//! Through Runtime Micro-Architecture Parameter Analysis"* (IISWC 2023):
//! hardware-aware, runtime selection of the OpenCL `local_work_size`
//! (**lws**) mapping parameter on a Vortex-like RISC-V SIMT GPGPU,
//!
//! ```text
//! lws = gws / hp,    hp = cores × warps × threads      (Eq. 1)
//! ```
//!
//! This facade crate re-exports the full stack:
//!
//! | Layer | Crate | What it provides |
//! |---|---|---|
//! | ISA | [`isa`] | RV32IMF + Vortex SIMT extensions, encode/decode |
//! | Assembler | [`asm`] | labels, pseudo-ops, semantic sections |
//! | Memory | [`mem`] | banked caches, multi-channel DRAM, coalescing |
//! | Simulator | [`sim`] | cycle-level SIMT device (event-driven) |
//! | Runtime | [`core`] | buffers, launches, **the lws auto-tuner** |
//! | Workloads | [`kernels`] | the paper's nine kernels + references |
//! | Fig. 1 | [`trace`] | issue traces, section tags, ASCII timelines |
//! | Fig. 2 | [`stats`] | ratio summaries, violin rendering |
//!
//! # Quickstart
//!
//! Run the paper's running example — vecadd on a 1-core/2-warp/4-thread
//! device — under the auto-tuned mapping:
//!
//! ```
//! use vortex_gpgpu::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut kernel = VecAdd::new(128);
//! let config = DeviceConfig::with_topology(1, 2, 4);
//! let outcome = run_kernel(&mut kernel, &config, LwsPolicy::Auto)?;
//! println!("{} cycles, lws={}", outcome.cycles, outcome.reports[0].lws);
//! assert_eq!(outcome.reports[0].lws, 16); // Eq. 1: 128 / (1*2*4)
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for richer scenarios and `crates/bench` for the
//! binaries that regenerate every figure and table of the paper.

#![forbid(unsafe_code)]

pub use vortex_asm as asm;
pub use vortex_core as core;
pub use vortex_isa as isa;
pub use vortex_kernels as kernels;
pub use vortex_mem as mem;
pub use vortex_sim as sim;
pub use vortex_stats as stats;
pub use vortex_trace as trace;

/// The most common imports, for examples and quick experiments.
pub mod prelude {
    pub use vortex_core::{
        optimal_lws, oracle_search, DispatchStats, LaunchParams, LaunchPlan, LwsPolicy,
        MappingScenario, OracleResult, Runtime, WorkMapping,
    };
    pub use vortex_kernels::{
        run_kernel, run_kernel_traced, Gauss, GcnAggr, GcnLayer, Kernel, Knn, Reduce, Relu,
        ResnetLayer, Saxpy, Sgemm, VecAdd,
    };
    pub use vortex_sim::{Device, DeviceConfig, VecTraceSink};
    pub use vortex_stats::{RatioSummary, Table};
    pub use vortex_trace::{render_timeline, TimelineOptions, Trace, TraceStats};
}
