//! Cross-crate integration tests: every kernel, every mapping policy,
//! assorted device topologies — each run is verified against its host
//! reference implementation.

use vortex_gpgpu::prelude::*;

fn all_kernels_tiny() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(VecAdd::new(100)),
        Box::new(Relu::new(100)),
        Box::new(Saxpy::new(100)),
        Box::new(Sgemm::new(10, 6, 8)),
        Box::new(Gauss::new(10, 7)),
        Box::new(Knn::new(100)),
        Box::new(GcnAggr::new(32, 128, 4)),
        Box::new(GcnLayer::new(32, 128, 4)),
        Box::new(ResnetLayer::new(5, 4, 3, 2)),
    ]
}

#[test]
fn every_kernel_correct_under_every_policy() {
    let config = DeviceConfig::with_topology(2, 2, 4);
    for mut kernel in all_kernels_tiny() {
        for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
            run_kernel(kernel.as_mut(), &config, policy).unwrap_or_else(|e| {
                panic!("{} under {policy}: {e}", kernel.name());
            });
        }
    }
}

#[test]
fn every_kernel_correct_across_topologies() {
    for topo in ["1c1w1t", "1c2w2t", "3c2w4t", "2c8w8t", "4c4w32t"] {
        let config: DeviceConfig = topo.parse().unwrap();
        for mut kernel in all_kernels_tiny() {
            run_kernel(kernel.as_mut(), &config, LwsPolicy::Auto).unwrap_or_else(|e| {
                panic!("{} on {topo}: {e}", kernel.name());
            });
        }
    }
}

#[test]
fn odd_sizes_and_explicit_lws() {
    // Sizes that do not divide evenly exercise the guarded item loop and
    // the clipped last task.
    let config = DeviceConfig::with_topology(2, 2, 4);
    for gws in [1u32, 7, 33, 127] {
        for lws in [1u32, 3, 5, 32, 1000] {
            let mut kernel = VecAdd::new(gws);
            run_kernel(&mut kernel, &config, LwsPolicy::Explicit(lws)).unwrap_or_else(|e| {
                panic!("gws={gws} lws={lws}: {e}");
            });
        }
    }
}

#[test]
fn cycles_are_deterministic() {
    let config = DeviceConfig::with_topology(3, 4, 8);
    let run = || {
        let mut kernel = Sgemm::new(12, 8, 10);
        run_kernel(&mut kernel, &config, LwsPolicy::Auto).unwrap().cycles
    };
    let first = run();
    for _ in 0..3 {
        assert_eq!(run(), first, "simulation must be cycle-deterministic");
    }
}

#[test]
fn multi_phase_kernel_reports_each_launch() {
    let mut layer = GcnLayer::new(32, 128, 4);
    let outcome =
        run_kernel(&mut layer, &DeviceConfig::with_topology(1, 4, 4), LwsPolicy::Auto).unwrap();
    assert_eq!(outcome.reports.len(), 2);
    assert!(outcome.reports.iter().all(|r| r.cycles > 0));
    assert_eq!(outcome.cycles, outcome.reports.iter().map(|r| r.cycles).sum::<u64>());
}

#[test]
fn traces_cover_every_active_core() {
    let config = DeviceConfig::with_topology(3, 2, 4);
    let mut kernel = VecAdd::new(96);
    let mut sink = VecTraceSink::new();
    run_kernel_traced(&mut kernel, &config, LwsPolicy::Auto, Some(&mut sink)).unwrap();
    let trace = Trace::from_sink(sink);
    assert_eq!(trace.cores(), vec![0, 1, 2], "96 items spread over 3 cores");
    assert!(trace.lane_utilization(config.threads) > 0.5);
}

#[test]
fn runtime_reuses_device_across_launches() {
    // Launch the same program twice through one Runtime: the clock is
    // monotonic and both launches verify.
    let mut kernel = Saxpy::new(64);
    let program = kernel.build().unwrap();
    let mut rt = Runtime::new(DeviceConfig::with_topology(1, 2, 4));
    rt.load_program(&program);
    kernel.setup(&mut rt).unwrap();
    let first = rt.launch(&LaunchParams::new(64), None).unwrap();
    let second = rt.launch(&LaunchParams::new(64), None).unwrap();
    assert!(first.cycles > 0 && second.cycles > 0);
    // Warm caches: the second identical launch cannot be slower by much,
    // and the device clock advanced monotonically.
    assert!(rt.device().now() >= first.cycles + second.cycles);
}

#[test]
fn lane_count_one_degenerates_gracefully() {
    // 1 thread/warp means no SIMT at all; everything still works.
    let config = DeviceConfig::with_topology(1, 1, 1);
    let mut kernel = Gauss::new(5, 5);
    let outcome = run_kernel(&mut kernel, &config, LwsPolicy::Auto).unwrap();
    assert_eq!(outcome.reports[0].lws, 25); // gws/hp = 25/1
}
