//! White-box goldens for the launch pipeline: precompiled `LaunchPlan`s
//! and the resident-warp dispatch-round lifecycle.
//!
//! The PR 5 refactor made launches the cheap primitive: the host caches a
//! compiled plan per `(gws, lws)` and the simulator keeps warp slots
//! resident across in-kernel dispatch rounds (a first-class `vx_wspawn`
//! round activation, a compact active-core event list).
//! None of that may move a single cycle, so this suite pins the two
//! launch shapes the refactor targets — a **low-occupancy `lws=32`
//! multi-round launch** (the `resnet_layer` attribution from PR 4) and a
//! **single-round full-occupancy launch** — each checked for
//! traced/untraced identity and against a hard-coded golden finish
//! cycle, plus plan-cache reuse producing bit-identical reports.

use vortex_core::Runtime;
use vortex_gpgpu::prelude::*;
use vortex_kernels::{run_kernel_prepared, Kernel, RunOutcome};

/// Cycle/counter fingerprint of one run (mirrors `cycle_golden`).
fn fingerprint(outcome: &RunOutcome) -> (u64, Vec<u64>, Vec<u32>, u64, u64, u64, u64) {
    (
        outcome.cycles,
        outcome.reports.iter().map(|r| r.cycles).collect(),
        outcome.reports.iter().map(|r| r.lws).collect(),
        outcome.instructions,
        outcome.dispatch.launches,
        outcome.dispatch.rounds,
        outcome.dispatch.round_tasks,
    )
}

/// Runs `kernel` traced and untraced on `topo`, asserts the two paths
/// agree, and returns the untraced outcome.
fn identical_runs(kernel: &mut dyn Kernel, topo: &str, policy: LwsPolicy) -> RunOutcome {
    let config: DeviceConfig = topo.parse().expect("valid topology");
    let untraced = run_kernel(kernel, &config, policy)
        .unwrap_or_else(|e| panic!("{} {topo} {policy}: {e}", kernel.name()));
    let mut sink = VecTraceSink::new();
    let traced = run_kernel_traced(kernel, &config, policy, Some(&mut sink))
        .unwrap_or_else(|e| panic!("{} {topo} {policy}: {e}", kernel.name()));
    assert_eq!(
        fingerprint(&untraced),
        fingerprint(&traced),
        "{} on {topo} under {policy}: traced vs untraced drift",
        kernel.name()
    );
    untraced
}

/// The PR 4 attribution shape: a fixed `lws = 32` launch whose tasks
/// outnumber one core's slots, so warp 0 re-runs the in-kernel round
/// loop — dispatch rounds back to back, each reactivating the resident
/// worker warps.
#[test]
fn low_occupancy_multi_round_launch_is_pinned() {
    let mut kernel = VecAdd::new(4096); // 128 tasks at lws=32
    let outcome = identical_runs(&mut kernel, "1c4w8t", LwsPolicy::Fixed32);
    let report = &outcome.reports[0];
    assert_eq!(report.lws, 32);
    assert_eq!(report.n_tasks, 128);
    // 128 tasks on 32 slots: 4 rounds on the single core.
    assert_eq!(report.rounds, 4);
    assert_eq!(report.total_rounds, 4);
    assert_eq!(report.scenario, MappingScenario::MultiCall);
    assert_eq!(outcome.dispatch.launches, 1);
    assert_eq!(outcome.dispatch.rounds, 4);
    assert_eq!(outcome.dispatch.round_tasks, 128);
    assert_eq!(outcome.cycles, GOLDEN_MULTI_ROUND, "multi-round golden cycle drift");
}

/// The exact-fit single-round shape: every hardware slot gets one task,
/// the round loop runs once and the launch drains.
#[test]
fn single_round_full_occupancy_launch_is_pinned() {
    let mut kernel = VecAdd::new(128); // 32 tasks at lws=4 on 32 slots
    let outcome = identical_runs(&mut kernel, "1c4w8t", LwsPolicy::Explicit(4));
    let report = &outcome.reports[0];
    assert_eq!(report.lws, 4);
    assert_eq!(report.n_tasks, 32);
    assert_eq!(report.rounds, 1);
    assert_eq!(report.total_rounds, 1);
    assert_eq!(report.scenario, MappingScenario::ExactFit);
    assert_eq!(outcome.dispatch.rounds, 1);
    assert_eq!(outcome.dispatch.round_tasks, 32);
    assert_eq!(outcome.cycles, GOLDEN_SINGLE_ROUND, "single-round golden cycle drift");
}

/// A launch that leaves most of the topology idle: only 2 of 4 cores
/// receive work, so the device's active-core event list runs (and
/// shrinks) without the idle cores ever being scanned.
#[test]
fn partially_active_topology_launch_is_pinned() {
    let mut kernel = VecAdd::new(64); // 2 tasks at lws=32 over 4 cores
    let outcome = identical_runs(&mut kernel, "4c4w8t", LwsPolicy::Fixed32);
    let report = &outcome.reports[0];
    assert_eq!(report.n_tasks, 2);
    assert_eq!(report.active_cores, 2);
    assert_eq!(report.rounds, 1);
    assert_eq!(report.total_rounds, 2);
    assert_eq!(report.scenario, MappingScenario::Underfilled);
    assert_eq!(outcome.cycles, GOLDEN_PARTIAL_TOPOLOGY, "partial-topology golden cycle drift");
}

/// Plan-cache hits must re-execute bit-identically: the same kernel run
/// repeatedly on one runtime (the campaign path) reuses cached plans and
/// reproduces the cold run's reports, cycles and counters exactly.
#[test]
fn plan_cache_hits_are_bit_identical_on_a_real_kernel() {
    let config: DeviceConfig = "2c4w8t".parse().unwrap();
    let mut kernel = VecAdd::new(512);
    let program = kernel.build().expect("assembles");
    let mut rt = Runtime::new(config);
    rt.load_program(&program);
    let cold = run_kernel_prepared(&mut kernel, &program, &mut rt, LwsPolicy::Fixed32).unwrap();
    let (hits_before, misses) = rt.plan_cache_stats();
    assert_eq!(hits_before, 0);
    assert!(misses > 0, "cold run must compile plans");
    let warm = run_kernel_prepared(&mut kernel, &program, &mut rt, LwsPolicy::Fixed32).unwrap();
    let (hits_after, misses_after) = rt.plan_cache_stats();
    assert_eq!(misses_after, misses, "warm run must not recompile");
    assert!(hits_after > 0, "warm run must hit the plan cache");
    assert_eq!(warm.reports, cold.reports, "cached plan produced a different LaunchReport");
    assert_eq!(fingerprint(&warm), fingerprint(&cold));
}

/// `Runtime::reset` between campaign runs must scale with the state the
/// last run actually touched, not with the topology: a single-task
/// launch on a 16-core device sweeps exactly one core and one L1, and a
/// device that was never (or was just) swept resets nothing at all.
#[test]
fn reset_work_scales_with_touched_state_not_topology() {
    use vortex_sim::ResetWork;
    let config: DeviceConfig = "16c4w8t".parse().unwrap();
    let mut kernel = VecAdd::new(8); // 1 task at lws=32: one active core
    let program = kernel.build().expect("assembles");
    let mut rt = Runtime::new(config);
    rt.load_program(&program);
    // A fresh device has nothing to clear — no full-topology sweep.
    rt.reset();
    assert_eq!(rt.device().last_reset_work(), ResetWork::default());
    let outcome = run_kernel_prepared(&mut kernel, &program, &mut rt, LwsPolicy::Fixed32).unwrap();
    assert_eq!(outcome.reports[0].active_cores, 1);
    rt.reset();
    assert_eq!(rt.device().last_reset_work(), ResetWork { cores: 1, l1_caches: 1 });
    // The sweep left the device clean: a second reset finds nothing.
    rt.reset();
    assert_eq!(rt.device().last_reset_work(), ResetWork::default());

    // The same discipline at big-topology scale: one task on a 256-core
    // device (16-core clusters) still sweeps exactly one core and one
    // L1 — the other 255 cores cost zero bytes touched.
    let config: DeviceConfig = "256c4w8tx16".parse().unwrap();
    let mut rt = Runtime::new(config);
    rt.load_program(&program);
    let outcome = run_kernel_prepared(&mut kernel, &program, &mut rt, LwsPolicy::Fixed32).unwrap();
    assert_eq!(outcome.reports[0].active_cores, 1);
    assert_eq!(rt.device().live_clusters(), 0, "all work drained after the run");
    rt.reset();
    assert_eq!(rt.device().last_reset_work(), ResetWork { cores: 1, l1_caches: 1 });
    rt.reset();
    assert_eq!(rt.device().last_reset_work(), ResetWork::default());
}

// Golden finish cycles, captured from the engine after it was verified
// bit-identical to the PR 4 binary over the extended 240-run cycle_dump
// grid (same convention as `cycle_golden`).
const GOLDEN_MULTI_ROUND: u64 = 8458;
const GOLDEN_SINGLE_ROUND: u64 = 903;
const GOLDEN_PARTIAL_TOPOLOGY: u64 = 1307;
