//! Paper-shape regression tests: the qualitative results of the paper
//! must hold in the reproduction (who wins, where, by roughly how much).

use vortex_gpgpu::prelude::*;

/// Fig. 1: on the paper's 1c2w4t device with gws=128, the Eq. 1 choice
/// (lws=16) must beat the naive (lws=1) and oversized (lws=32/64)
/// mappings.
#[test]
fn fig1_exact_fit_wins() {
    let config = DeviceConfig::with_topology(1, 2, 4);
    let mut cycles = std::collections::HashMap::new();
    for lws in [1u32, 16, 32, 64] {
        let mut kernel = VecAdd::new(128);
        let outcome = run_kernel(&mut kernel, &config, LwsPolicy::Explicit(lws)).unwrap();
        cycles.insert(lws, outcome.cycles);
    }
    assert!(cycles[&16] < cycles[&1], "{cycles:?}");
    assert!(cycles[&16] < cycles[&32], "{cycles:?}");
    assert!(cycles[&16] < cycles[&64], "{cycles:?}");
    // And the penalty ordering of the under-filled side grows with lws.
    assert!(cycles[&32] < cycles[&64], "{cycles:?}");
}

/// §2: the three scenarios map onto rounds/utilisation exactly as
/// described.
#[test]
fn scenarios_follow_eq1() {
    let config = DeviceConfig::with_topology(1, 2, 4); // hp = 8
    let plan = WorkMapping::plan(128, 1, &config);
    assert_eq!(plan.scenario(), MappingScenario::MultiCall);
    assert_eq!(plan.rounds(), 16);
    let plan = WorkMapping::plan(128, 16, &config);
    assert_eq!(plan.scenario(), MappingScenario::ExactFit);
    assert_eq!(plan.rounds(), 1);
    let plan = WorkMapping::plan(128, 64, &config);
    assert_eq!(plan.scenario(), MappingScenario::Underfilled);
    assert!(plan.tail_utilization() < 0.5);
}

/// §3: "when the hardware parallelism hp exceeds the gws of the executed
/// kernel, Eq. 1 resolves to lws=1".
#[test]
fn eq1_resolves_to_naive_on_huge_hardware() {
    let config = DeviceConfig::with_topology(64, 32, 32); // hp = 65536
    assert_eq!(LwsPolicy::Auto.lws_for(4096, &config), 1);
    // ... and therefore the ratio against the naive mapping is exactly 1.
    let mut a = VecAdd::new(256);
    let auto =
        run_kernel(&mut a, &DeviceConfig::with_topology(8, 8, 8), LwsPolicy::Auto).unwrap().cycles;
    let mut b = VecAdd::new(256);
    let naive = run_kernel(&mut b, &DeviceConfig::with_topology(8, 8, 8), LwsPolicy::Naive1)
        .unwrap()
        .cycles;
    assert_eq!(auto, naive, "identical mapping must cost identical cycles");
}

/// Fig. 2 (sampled): across a small sweep, the auto policy's mean ratio
/// against lws=1 is comfortably above 1 for the streaming math kernels,
/// and the lws=32 baseline loses big on sgemm (the paper's 9.26x row).
#[test]
fn fig2_sampled_ratios_hold() {
    let topologies = ["1c2w2t", "1c4w8t", "2c2w16t", "4c8w4t", "8c16w8t", "16c32w32t"];
    let configs: Vec<DeviceConfig> = topologies.iter().map(|t| t.parse().unwrap()).collect();

    // vecadd vs lws=1: auto never loses, mean well above 1.
    let mut ratios = Vec::new();
    for config in &configs {
        let mut k = VecAdd::new(2048);
        let auto = run_kernel(&mut k, config, LwsPolicy::Auto).unwrap().cycles;
        let mut k = VecAdd::new(2048);
        let naive = run_kernel(&mut k, config, LwsPolicy::Naive1).unwrap().cycles;
        ratios.push(naive as f64 / auto as f64);
    }
    let summary = RatioSummary::from_ratios(ratios.iter().copied());
    assert!(summary.worst >= 0.99, "auto must not lose to lws=1: {ratios:?}");
    assert!(summary.avg > 1.2, "mean speedup over lws=1 too small: {ratios:?}");

    // sgemm vs lws=32 on a big device: the under-filled fixed mapping
    // collapses (paper: avg 9.26x).
    let config = DeviceConfig::with_topology(16, 32, 32);
    let mut k = Sgemm::sweep();
    let auto = run_kernel(&mut k, &config, LwsPolicy::Auto).unwrap().cycles;
    let mut k = Sgemm::sweep();
    let fixed = run_kernel(&mut k, &config, LwsPolicy::Fixed32).unwrap().cycles;
    let ratio = fixed as f64 / auto as f64;
    assert!(ratio > 2.0, "sgemm lws=32 should collapse on big devices, got {ratio:.2}");
}

/// Fig. 2 annotation: the memory-bound kernels stress DRAM far harder
/// than the compute-bound ones on the same device.
#[test]
fn memory_bound_classification() {
    let config = DeviceConfig::with_topology(8, 8, 8);
    let mut knn = Knn::sweep();
    let knn_util = run_kernel(&mut knn, &config, LwsPolicy::Auto).unwrap().dram_utilization;
    let mut sgemm = Sgemm::sweep();
    let sgemm_util = run_kernel(&mut sgemm, &config, LwsPolicy::Auto).unwrap().dram_utilization;
    assert!(
        knn_util > 2.0 * sgemm_util,
        "knn ({knn_util:.2}) must be far more DRAM-hungry than sgemm ({sgemm_util:.2})"
    );
}

/// The dispatch overhead visible in Fig. 1's lws=1 panel: most issued
/// instructions are mapping overhead, not kernel body.
#[test]
fn fig1_lws1_overhead_dominates() {
    let config = DeviceConfig::with_topology(1, 2, 4);
    let mut kernel = VecAdd::new(128);
    let program = kernel.build().unwrap();
    let mut sink = VecTraceSink::new();
    run_kernel_traced(&mut kernel, &config, LwsPolicy::Explicit(1), Some(&mut sink)).unwrap();
    let trace = Trace::from_sink(sink);
    let stats = TraceStats::compute(&trace, &program);
    assert!(
        stats.overhead_fraction() > 0.5,
        "lws=1 should be overhead-dominated, got {:.2}",
        stats.overhead_fraction()
    );
    assert_eq!(stats.wspawns, 16, "16 dispatch rounds spawn 16 times");

    // The exact-fit mapping flips the balance.
    let mut kernel = VecAdd::new(128);
    let mut sink = VecTraceSink::new();
    run_kernel_traced(&mut kernel, &config, LwsPolicy::Explicit(16), Some(&mut sink)).unwrap();
    let stats = TraceStats::compute(&Trace::from_sink(sink), &program);
    assert!(
        stats.body_fraction() > 0.6,
        "exact fit should be body-dominated, got {:.2}",
        stats.body_fraction()
    );
}
