//! Cycle-golden regression tests: the perf-oriented simulator paths must
//! not drift timing.
//!
//! The simulator has three run paths that must agree instruction-for-
//! instruction and cycle-for-cycle:
//!
//! * the **traced** path (`dyn TraceSink`, used for Fig. 1),
//! * the **untraced monomorphised** path (`NullSink`, used by the
//!   450-configuration campaigns), and
//! * the **reused-device** path (`Runtime::reset` between runs, used by
//!   `run_campaign` so nothing is rebuilt per measurement).
//!
//! On top of the cross-path identity, a table of hard-coded golden finish
//! cycles pins the absolute timing of representative runs, so a change
//! that shifts *all* paths together still fails loudly.

use vortex_gpgpu::prelude::*;
use vortex_kernels::{run_kernel_prepared, Kernel};
use vortex_sim::{DeviceCounters, MemStats};

fn kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(VecAdd::new(512)),
        Box::new(Gauss::new(16, 5)),
        Box::new(GcnAggr::new(48, 160, 4)),
    ]
}

fn sweep_corner_configs() -> Vec<DeviceConfig> {
    ["1c2w2t", "2c4w8t", "8c8w8t", "64c32w32t"]
        .iter()
        .map(|s| s.parse().expect("valid topology"))
        .collect()
}

#[derive(Debug, PartialEq)]
struct Fingerprint {
    cycles: u64,
    phase_cycles: Vec<u64>,
    lws: Vec<u32>,
    counters_instructions: u64,
    mem: MemStats,
    dram_utilization_bits: u64,
}

fn fingerprint(outcome: &vortex_kernels::RunOutcome) -> Fingerprint {
    Fingerprint {
        cycles: outcome.cycles,
        phase_cycles: outcome.reports.iter().map(|r| r.cycles).collect(),
        lws: outcome.reports.iter().map(|r| r.lws).collect(),
        counters_instructions: outcome.instructions,
        mem: outcome.mem,
        dram_utilization_bits: outcome.dram_utilization.to_bits(),
    }
}

/// Traced (dyn-dispatch) and untraced (monomorphised) runs are identical
/// in finish cycles, device counters and memory statistics.
#[test]
fn traced_and_untraced_paths_agree() {
    for config in sweep_corner_configs() {
        for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
            for mut kernel in kernels() {
                let untraced = run_kernel(kernel.as_mut(), &config, policy)
                    .unwrap_or_else(|e| panic!("{} {config} {policy}: {e}", kernel.name()));
                let mut sink = VecTraceSink::new();
                let traced =
                    run_kernel_traced(kernel.as_mut(), &config, policy, Some(&mut sink))
                        .unwrap_or_else(|e| panic!("{} {config} {policy}: {e}", kernel.name()));
                assert_eq!(
                    fingerprint(&untraced),
                    fingerprint(&traced),
                    "{} on {config} under {policy}: traced vs untraced drift",
                    kernel.name()
                );
                // The traced run actually observed every issued instruction.
                assert_eq!(
                    sink.events().len() as u64,
                    traced.instructions,
                    "{} on {config} under {policy}: sink missed issues",
                    kernel.name()
                );
            }
        }
    }
}

/// A runtime reused across runs via `reset()` (the campaign path) matches
/// a freshly constructed device run-for-run.
#[test]
fn reused_runtime_matches_fresh_device() {
    for config in sweep_corner_configs() {
        for mut kernel in kernels() {
            let program = kernel.build().expect("assembles");
            let mut rt = vortex_core::Runtime::new(config);
            rt.load_program(&program);
            // Deliberately dirty the runtime with a different policy first.
            run_kernel_prepared(kernel.as_mut(), &program, &mut rt, LwsPolicy::Fixed32)
                .unwrap_or_else(|e| panic!("{} {config}: {e}", kernel.name()));
            for policy in [LwsPolicy::Naive1, LwsPolicy::Auto] {
                let reused =
                    run_kernel_prepared(kernel.as_mut(), &program, &mut rt, policy)
                        .unwrap_or_else(|e| panic!("{} {config} {policy}: {e}", kernel.name()));
                let fresh = run_kernel(kernel.as_mut(), &config, policy)
                    .unwrap_or_else(|e| panic!("{} {config} {policy}: {e}", kernel.name()));
                assert_eq!(
                    fingerprint(&reused),
                    fingerprint(&fresh),
                    "{} on {config} under {policy}: reused runtime drifted",
                    kernel.name()
                );
            }
        }
    }
}

/// Device counters agree between a traced and an untraced raw device run
/// (below the runtime layer, catching drift in `Device::run` itself).
#[test]
fn raw_device_counters_agree_across_paths() {
    let mut kernel = VecAdd::new(256);
    let program = kernel.build().expect("assembles");
    let config: DeviceConfig = "2c2w4t".parse().unwrap();

    let run = |traced: bool| -> (u64, DeviceCounters, MemStats) {
        let mut rt = vortex_core::Runtime::new(config);
        rt.load_program(&program);
        let mut k = VecAdd::new(256);
        if traced {
            let mut sink = VecTraceSink::new();
            run_kernel_traced(&mut k, &config, LwsPolicy::Auto, Some(&mut sink)).unwrap();
        }
        let outcome = run_kernel_prepared(&mut k, &program, &mut rt, LwsPolicy::Auto).unwrap();
        (outcome.cycles, *rt.device().counters(), rt.device().mem_stats())
    };
    assert_eq!(run(false), run(true));
}

/// Absolute golden finish cycles for representative runs. These values
/// were captured from the seed simulator (pre-optimisation) and verified
/// bit-identical against the optimised engine; any future change that
/// shifts them is a timing-semantics change and must be deliberate.
#[test]
fn golden_finish_cycles() {
    let golden: &[(&str, &str, LwsPolicy, u64)] = &[
        ("vecadd", "1c2w4t", LwsPolicy::Naive1, GOLDEN_VECADD_NAIVE),
        ("vecadd", "1c2w4t", LwsPolicy::Auto, GOLDEN_VECADD_AUTO),
        ("gauss", "2c4w8t", LwsPolicy::Auto, GOLDEN_GAUSS_AUTO),
    ];
    for &(name, topo, policy, expected) in golden {
        let config: DeviceConfig = topo.parse().unwrap();
        let mut kernel: Box<dyn Kernel> = match name {
            "vecadd" => Box::new(VecAdd::new(512)),
            "gauss" => Box::new(Gauss::new(16, 5)),
            other => panic!("unknown golden kernel {other}"),
        };
        let outcome = run_kernel(kernel.as_mut(), &config, policy).unwrap();
        assert_eq!(
            outcome.cycles, expected,
            "{name} on {topo} under {policy}: golden cycle drift"
        );
    }
}

// Captured once from the verified-identical engines (see test above).
const GOLDEN_VECADD_NAIVE: u64 = 12846;
const GOLDEN_VECADD_AUTO: u64 = 2574;
const GOLDEN_GAUSS_AUTO: u64 = 1088;
