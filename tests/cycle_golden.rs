//! Cycle-golden regression tests: the perf-oriented simulator paths must
//! not drift timing.
//!
//! The simulator has three run paths that must agree instruction-for-
//! instruction and cycle-for-cycle:
//!
//! * the **traced** path (`dyn TraceSink`, used for Fig. 1),
//! * the **untraced monomorphised** path (`NullSink`, used by the
//!   450-configuration campaigns), and
//! * the **reused-device** path (`Runtime::reset` between runs, used by
//!   `run_campaign` so nothing is rebuilt per measurement).
//!
//! All **nine paper kernels** are pinned (at reduced sizes), so the SoA
//! register-file fast paths are gated kernel by kernel: every kernel's
//! instruction mix exercises a different subset of the full-mask /
//! masked execute loops and the broadcast / unit-stride memory paths.
//! Dedicated white-box programs additionally pin one traced-vs-untraced
//! identity case per execute-loop fast path (divergent masked rows,
//! broadcast loads, unit-stride loads/stores — integer and FP, through
//! the shared `fast_word_load`/`fast_word_store` helpers — uniform
//! power-of-two division, and the masked page-run gather, including a
//! read of a never-written page).
//!
//! On top of the cross-path identity, a table of hard-coded golden finish
//! cycles pins the absolute timing of representative runs, so a change
//! that shifts *all* paths together still fails loudly.

use vortex_gpgpu::prelude::*;
use vortex_kernels::{run_kernel_prepared, Kernel};
use vortex_sim::{DeviceCounters, MemStats};

/// All nine paper kernels at sizes small enough for exhaustive
/// cross-path sweeps.
fn kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(VecAdd::new(512)),
        Box::new(Relu::new(300)),
        Box::new(Saxpy::new(257)),
        Box::new(Sgemm::new(12, 8, 8)),
        Box::new(Gauss::new(16, 5)),
        Box::new(Knn::new(128)),
        Box::new(GcnAggr::new(48, 160, 4)),
        Box::new(GcnLayer::new(32, 128, 4)),
        Box::new(ResnetLayer::new(6, 4, 4, 2)),
        Box::new(Reduce::new(300)),
    ]
}

fn sweep_corner_configs() -> Vec<DeviceConfig> {
    ["1c2w2t", "2c4w8t", "8c8w8t", "64c32w32t"]
        .iter()
        .map(|s| s.parse().expect("valid topology"))
        .collect()
}

#[derive(Debug, PartialEq)]
struct Fingerprint {
    cycles: u64,
    phase_cycles: Vec<u64>,
    lws: Vec<u32>,
    counters_instructions: u64,
    mem: MemStats,
    dram_utilization_bits: u64,
}

fn fingerprint(outcome: &vortex_kernels::RunOutcome) -> Fingerprint {
    Fingerprint {
        cycles: outcome.cycles,
        phase_cycles: outcome.reports.iter().map(|r| r.cycles).collect(),
        lws: outcome.reports.iter().map(|r| r.lws).collect(),
        counters_instructions: outcome.instructions,
        mem: outcome.mem,
        dram_utilization_bits: outcome.dram_utilization.to_bits(),
    }
}

/// Traced (dyn-dispatch) and untraced (monomorphised) runs are identical
/// in finish cycles, device counters and memory statistics, for every
/// paper kernel.
#[test]
fn traced_and_untraced_paths_agree() {
    for config in sweep_corner_configs() {
        for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
            for mut kernel in kernels() {
                let untraced = run_kernel(kernel.as_mut(), &config, policy)
                    .unwrap_or_else(|e| panic!("{} {config} {policy}: {e}", kernel.name()));
                let mut sink = VecTraceSink::new();
                let traced = run_kernel_traced(kernel.as_mut(), &config, policy, Some(&mut sink))
                    .unwrap_or_else(|e| panic!("{} {config} {policy}: {e}", kernel.name()));
                assert_eq!(
                    fingerprint(&untraced),
                    fingerprint(&traced),
                    "{} on {config} under {policy}: traced vs untraced drift",
                    kernel.name()
                );
                // The traced run actually observed every issued instruction.
                assert_eq!(
                    sink.events().len() as u64,
                    traced.instructions,
                    "{} on {config} under {policy}: sink missed issues",
                    kernel.name()
                );
            }
        }
    }
}

/// A runtime reused across runs via `reset()` (the campaign path) matches
/// a freshly constructed device run-for-run, for every paper kernel.
#[test]
fn reused_runtime_matches_fresh_device() {
    for config in sweep_corner_configs() {
        for mut kernel in kernels() {
            let program = kernel.build().expect("assembles");
            let mut rt = vortex_core::Runtime::new(config);
            rt.load_program(&program);
            // Deliberately dirty the runtime with a different policy first.
            run_kernel_prepared(kernel.as_mut(), &program, &mut rt, LwsPolicy::Fixed32)
                .unwrap_or_else(|e| panic!("{} {config}: {e}", kernel.name()));
            for policy in [LwsPolicy::Naive1, LwsPolicy::Auto] {
                let reused = run_kernel_prepared(kernel.as_mut(), &program, &mut rt, policy)
                    .unwrap_or_else(|e| panic!("{} {config} {policy}: {e}", kernel.name()));
                let fresh = run_kernel(kernel.as_mut(), &config, policy)
                    .unwrap_or_else(|e| panic!("{} {config} {policy}: {e}", kernel.name()));
                assert_eq!(
                    fingerprint(&reused),
                    fingerprint(&fresh),
                    "{} on {config} under {policy}: reused runtime drifted",
                    kernel.name()
                );
            }
        }
    }
}

/// Device counters agree between a traced and an untraced raw device run
/// (below the runtime layer, catching drift in `Device::run` itself).
#[test]
fn raw_device_counters_agree_across_paths() {
    let kernel = VecAdd::new(256);
    let program = kernel.build().expect("assembles");
    let config: DeviceConfig = "2c2w4t".parse().unwrap();

    let run = |traced: bool| -> (u64, DeviceCounters, MemStats) {
        let mut rt = vortex_core::Runtime::new(config);
        rt.load_program(&program);
        let mut k = VecAdd::new(256);
        if traced {
            let mut sink = VecTraceSink::new();
            run_kernel_traced(&mut k, &config, LwsPolicy::Auto, Some(&mut sink)).unwrap();
        }
        let outcome = run_kernel_prepared(&mut k, &program, &mut rt, LwsPolicy::Auto).unwrap();
        (outcome.cycles, *rt.device().counters(), rt.device().mem_stats())
    };
    assert_eq!(run(false), run(true));
}

// ---------------------------------------------------------------------
// Per-fast-path identity programs.
//
// Each white-box program below is built to steer execution down exactly
// one of the execute-loop fast paths the SoA register file introduced,
// then checked traced-vs-untraced on a raw device: identical finish
// cycle, counters and architectural results.
// ---------------------------------------------------------------------

mod fastpaths {
    use vortex_asm::Assembler;
    use vortex_gpgpu::prelude::*;
    use vortex_isa::reg;
    use vortex_sim::{Device, NullSink, VecTraceSink};

    const BASE: u32 = 0x8000_0000;

    /// Runs `build` on a fresh device traced and untraced; asserts the
    /// cycle/counter/memory fingerprints agree and returns the probed
    /// memory words for an architectural check.
    fn identical_runs(threads: usize, build: impl Fn(&mut Assembler), probe: &[u32]) -> Vec<u32> {
        let run = |traced: bool| -> (u64, u64, u64, Vec<u32>) {
            let mut a = Assembler::new(BASE);
            build(&mut a);
            let program = a.assemble().expect("assembles");
            let mut device = Device::new(DeviceConfig::with_topology(1, 2, threads));
            device.load_program(&program);
            device.start_warp(0, program.entry());
            let finish = if traced {
                let mut sink = VecTraceSink::new();
                device.run(1_000_000, Some(&mut sink)).expect("runs")
            } else {
                device.run_with::<NullSink>(1_000_000, None).expect("runs")
            };
            let mem = device.memory();
            let words = probe.iter().map(|&addr| mem.read_u32(addr)).collect();
            (finish, device.counters().instructions, device.counters().lane_instructions, words)
        };
        let untraced = run(false);
        let traced = run(true);
        assert_eq!(untraced, traced, "traced vs untraced fast-path drift");
        untraced.3
    }

    /// Masked (divergent) row loops: `vx_split` leaves a partial mask and
    /// the arms must write only the live lanes.
    #[test]
    fn masked_rows_identity() {
        let words = identical_runs(
            4,
            |a| {
                a.csrr(reg::T0, vortex_isa::csrs::THREAD_ID);
                a.li(reg::T1, 2);
                // Diverge: lanes with tid < 2 take the then-side.
                a.sltu(reg::T2, reg::T0, reg::T1);
                let else_l = a.label("else");
                a.vx_split(reg::T2, else_l);
                a.addi(reg::T3, reg::ZERO, 11); // live lanes only
                a.bind(else_l).expect("fresh");
                a.vx_join();
                // Store per-lane result: base 0x1000 + 4*tid.
                a.slli(reg::T4, reg::T0, 2);
                a.li_u32(reg::T5, 0x1000);
                a.add(reg::T4, reg::T4, reg::T5);
                a.sw(reg::T3, 0, reg::T4);
                a.vx_tmc(reg::ZERO);
            },
            &[0x1000, 0x1004, 0x1008, 0x100C],
        );
        // Lanes 0,1 wrote 11; lanes 2,3 kept the cleared register.
        assert_eq!(words, vec![11, 11, 0, 0]);
    }

    /// Broadcast loads: every lane reads one uniform address (the
    /// dispatch/argument idiom) — served by a single bulk access.
    #[test]
    fn broadcast_load_identity() {
        let words = identical_runs(
            8,
            |a| {
                // Seed a value, then have all 8 lanes load it uniformly.
                a.li(reg::T0, 1234);
                a.li_u32(reg::T1, 0x2000);
                a.sw(reg::T0, 0, reg::T1);
                a.lw(reg::T2, 0, reg::T1); // broadcast load
                                           // Fan out per lane so the result is observable per lane.
                a.csrr(reg::T3, vortex_isa::csrs::THREAD_ID);
                a.slli(reg::T3, reg::T3, 2);
                a.li_u32(reg::T4, 0x3000);
                a.add(reg::T3, reg::T3, reg::T4);
                a.sw(reg::T2, 0, reg::T3);
                a.vx_tmc(reg::ZERO);
            },
            &[0x3000, 0x3004, 0x301C],
        );
        assert_eq!(words, vec![1234, 1234, 1234]);
    }

    /// Unit-stride loads and stores: lane-consecutive words — the
    /// streaming idiom served by the bulk row path.
    #[test]
    fn unit_stride_load_store_identity() {
        let words = identical_runs(
            8,
            |a| {
                // addr = 0x4000 + 4*tid; store tid*3, reload, store doubled
                // at 0x5000 + 4*tid.
                a.csrr(reg::T0, vortex_isa::csrs::THREAD_ID);
                a.slli(reg::T1, reg::T0, 2);
                a.li_u32(reg::T2, 0x4000);
                a.add(reg::T2, reg::T2, reg::T1);
                a.li(reg::T3, 3);
                a.mul(reg::T3, reg::T0, reg::T3);
                a.sw(reg::T3, 0, reg::T2); // unit-stride store
                a.lw(reg::T4, 0, reg::T2); // unit-stride load
                a.add(reg::T4, reg::T4, reg::T4); // double it
                a.li_u32(reg::T5, 0x5000);
                a.add(reg::T5, reg::T5, reg::T1);
                a.sw(reg::T4, 0, reg::T5);
                a.vx_tmc(reg::ZERO);
            },
            &[0x4000, 0x4004, 0x401C, 0x5004, 0x501C],
        );
        assert_eq!(words, vec![0, 3, 21, 6, 42]);
    }

    /// Divergent masked word gathers whose lane addresses span several
    /// 4 KiB pages — the batched page-run gather path
    /// (`MainMemory::read_u32_gather`), which the full-mask broadcast /
    /// unit-stride fast paths never reach. One active lane reads a page
    /// nothing ever wrote (architecturally zero).
    #[test]
    fn masked_gather_across_pages_identity() {
        const STRIDE: u32 = 0x1044; // > one 4 KiB page, word-aligned
        let words = identical_runs(
            8,
            |a| {
                a.csrr(reg::T0, vortex_isa::csrs::THREAD_ID);
                // addr = 0x10000 + tid * STRIDE: every lane on its own page.
                a.li_u32(reg::T1, STRIDE);
                a.mul(reg::T1, reg::T0, reg::T1);
                a.li_u32(reg::T2, 0x1_0000);
                a.add(reg::T1, reg::T1, reg::T2);
                // Seed mem[addr] = tid * 7 + 1, except lane 5 (left
                // untouched so its page stays non-resident): diverge on
                // tid != 5 for the seeding store.
                a.li(reg::T3, 5);
                a.sub(reg::T3, reg::T0, reg::T3);
                a.snez(reg::T3, reg::T3);
                let skip_seed = a.label("skip_seed");
                a.vx_split(reg::T3, skip_seed);
                a.li(reg::T4, 7);
                a.mul(reg::T4, reg::T0, reg::T4);
                a.addi(reg::T4, reg::T4, 1);
                a.sw(reg::T4, 0, reg::T1); // scattered store, one page each
                a.bind(skip_seed).expect("fresh");
                a.vx_join();
                // Diverge again: only the even lanes gather, so the load
                // runs under a partial mask with page-spanning addresses.
                a.andi(reg::T5, reg::T0, 1);
                a.seqz(reg::T5, reg::T5);
                let skip_load = a.label("skip_load");
                a.vx_split(reg::T5, skip_load);
                a.lw(reg::T6, 0, reg::T1); // masked page-run gather
                a.bind(skip_load).expect("fresh");
                a.vx_join();
                // Publish per lane: out[tid] = loaded value (0 for odd
                // lanes, whose register kept the cleared value).
                a.slli(reg::A0, reg::T0, 2);
                a.li_u32(reg::A1, 0x3000);
                a.add(reg::A0, reg::A0, reg::A1);
                a.sw(reg::T6, 0, reg::A0);
                a.vx_tmc(reg::ZERO);
            },
            &[0x3000, 0x3008, 0x3010, 0x3018, 0x3004],
        );
        // Even lanes gathered tid*7+1 from their own pages; odd lanes
        // skipped the load (register still zero).
        assert_eq!(words, vec![1, 15, 29, 43, 0]);
    }

    /// A divergent gather where one active lane's page was never written:
    /// the page-run walk must zero-fill exactly like per-lane reads.
    #[test]
    fn masked_gather_reads_untouched_page_as_zero() {
        let words = identical_runs(
            4,
            |a| {
                a.csrr(reg::T0, vortex_isa::csrs::THREAD_ID);
                // addr = 0x40000 + tid * 0x2000 — nothing is ever stored
                // there; mask off lane 0 so the gather is masked.
                a.slli(reg::T1, reg::T0, 13);
                a.li_u32(reg::T2, 0x4_0000);
                a.add(reg::T1, reg::T1, reg::T2);
                a.snez(reg::T3, reg::T0);
                let skip = a.label("skip");
                a.vx_split(reg::T3, skip);
                a.lw(reg::T4, 0, reg::T1);
                a.addi(reg::T4, reg::T4, 9);
                a.bind(skip).expect("fresh");
                a.vx_join();
                a.slli(reg::A0, reg::T0, 2);
                a.li_u32(reg::A1, 0x5000);
                a.add(reg::A0, reg::A0, reg::A1);
                a.sw(reg::T4, 0, reg::A0);
                a.vx_tmc(reg::ZERO);
            },
            &[0x5000, 0x5004, 0x5008, 0x500C],
        );
        assert_eq!(words, vec![0, 9, 9, 9]);
    }

    /// `flw` broadcast and unit-stride plus `fsw` unit-stride: the FP
    /// copies of the four former fast-path blocks, now routed through the
    /// shared `fast_word_load`/`fast_word_store` helpers (the integer
    /// `lw`/`sw` copies are pinned by the tests above).
    #[test]
    fn flw_fsw_fastpath_identity() {
        use vortex_isa::fregs;
        let words = identical_runs(
            8,
            |a| {
                a.csrr(reg::T0, vortex_isa::csrs::THREAD_ID);
                // Seed a uniform scale at 0x6000 (2.0f32) and a unit-stride
                // vector v[tid] = float(tid) at 0x7000 + 4*tid.
                a.li_u32(reg::T1, 0x4000_0000); // 2.0f32 bits
                a.li_u32(reg::T2, 0x6000);
                a.sw(reg::T1, 0, reg::T2);
                a.fcvt_s_w(fregs::FT0, reg::T0);
                a.slli(reg::T3, reg::T0, 2);
                a.li_u32(reg::T4, 0x7000);
                a.add(reg::T4, reg::T4, reg::T3);
                a.fsw(fregs::FT0, 0, reg::T4); // unit-stride fsw (bulk)
                                               // Broadcast flw of the scale, unit-stride flw of v.
                a.flw(fregs::FT1, 0, reg::T2); // broadcast flw (bulk)
                a.flw(fregs::FT2, 0, reg::T4); // unit-stride flw (bulk)
                a.fmul_s(fregs::FT3, fregs::FT1, fregs::FT2);
                // out[tid] = 2.0 * tid at 0x8000 + 4*tid.
                a.li_u32(reg::T5, 0x8000);
                a.add(reg::T5, reg::T5, reg::T3);
                a.fsw(fregs::FT3, 0, reg::T5);
                a.vx_tmc(reg::ZERO);
            },
            &[0x8000, 0x8004, 0x8010, 0x801C],
        );
        let expect: Vec<u32> = [0.0f32, 2.0, 8.0, 14.0].iter().map(|v| v.to_bits()).collect();
        assert_eq!(words, expect);
    }

    /// Uniform power-of-two `divu`/`remu` (the `item / hs` indexing
    /// idiom) — served by the shift/mask path.
    #[test]
    fn pow2_division_identity() {
        let words = identical_runs(
            8,
            |a| {
                a.csrr(reg::T0, vortex_isa::csrs::THREAD_ID);
                a.li(reg::T1, 4); // uniform power-of-two divisor
                a.divu(reg::T2, reg::T0, reg::T1);
                a.remu(reg::T3, reg::T0, reg::T1);
                // out[tid] = q * 100 + r
                a.li(reg::T4, 100);
                a.mul(reg::T2, reg::T2, reg::T4);
                a.add(reg::T2, reg::T2, reg::T3);
                a.slli(reg::T5, reg::T0, 2);
                a.li_u32(reg::T6, 0x6000);
                a.add(reg::T5, reg::T5, reg::T6);
                a.sw(reg::T2, 0, reg::T5);
                a.vx_tmc(reg::ZERO);
            },
            &[0x6000, 0x6004, 0x6014, 0x601C],
        );
        // tid 0 -> 0, tid 1 -> 1, tid 5 -> 101, tid 7 -> 103.
        assert_eq!(words, vec![0, 1, 101, 103]);
    }
}

// ---------------------------------------------------------------------
// Batched memory-transaction pipeline (PR 4).
//
// The programs below steer execution down the miss-heavy legs of
// `MemSystem::access_batch` that the paper kernels' default geometry
// rarely keeps hot: conflict misses, dirty-victim write-backs (the
// folded L2 slot-pair booking), and L1 bank-group serialisation of a
// divergent gather. Each is checked traced-vs-untraced on a deliberately
// under-sized hierarchy, plus an absolute golden finish cycle.
// ---------------------------------------------------------------------

mod batched_mem {
    use vortex_asm::Assembler;
    use vortex_gpgpu::prelude::*;
    use vortex_gpgpu::sim::{CacheConfig, MemConfig};
    use vortex_isa::reg;
    use vortex_sim::{Device, NullSink, VecTraceSink};

    const BASE: u32 = 0x8000_0000;

    /// A 1-core device over an under-sized hierarchy: 512 B direct-mapped
    /// L1 (8 sets), 2 KiB 2-way L2, 2 L1 banks — every strided SIMT
    /// access conflicts, and more than two lines per access exercises the
    /// bank-group serialisation inside one batch.
    fn thrash_config(threads: usize) -> DeviceConfig {
        let mut config = DeviceConfig::with_topology(1, 2, threads);
        config.mem = MemConfig {
            l1: CacheConfig { size_bytes: 512, ways: 1, line_bytes: 64 },
            l1_banks: 2,
            l2: CacheConfig { size_bytes: 2048, ways: 2, line_bytes: 64 },
            l2_banks: 2,
            ..MemConfig::default()
        };
        config
    }

    /// Runs `build` on a fresh thrash-config device traced and untraced;
    /// asserts identical fingerprints and returns the finish cycle plus
    /// the probed memory words.
    fn identical_runs(
        threads: usize,
        build: impl Fn(&mut Assembler),
        probe: &[u32],
    ) -> (u64, Vec<u32>) {
        let run = |traced: bool| -> (u64, u64, u64, Vec<u32>) {
            let mut a = Assembler::new(BASE);
            build(&mut a);
            let program = a.assemble().expect("assembles");
            let mut device = Device::new(thrash_config(threads));
            device.load_program(&program);
            device.start_warp(0, program.entry());
            let finish = if traced {
                let mut sink = VecTraceSink::new();
                device.run(1_000_000, Some(&mut sink)).expect("runs")
            } else {
                device.run_with::<NullSink>(1_000_000, None).expect("runs")
            };
            let mem = device.memory();
            let words = probe.iter().map(|&addr| mem.read_u32(addr)).collect();
            (finish, device.counters().instructions, device.counters().lane_instructions, words)
        };
        let untraced = run(false);
        let traced = run(true);
        assert_eq!(untraced, traced, "traced vs untraced batched-mem drift");
        (untraced.0, untraced.3)
    }

    /// Divergent strided loads whose lanes all map to L1 set 0 of the
    /// direct-mapped thrash cache: every round of the gather conflicts,
    /// re-fills, and (because the seeding stores dirtied the lines)
    /// displaces dirty victims through the folded L2 slot-pair booking.
    #[test]
    fn thrashing_divergent_gather_identity() {
        let (finish, words) = identical_runs(
            8,
            |a| {
                a.csrr(reg::T0, vortex_isa::csrs::THREAD_ID);
                // addrA = 0x1_0000 + tid*512 — all lanes hit L1 set 0.
                a.slli(reg::T1, reg::T0, 9);
                a.li_u32(reg::T2, 0x1_0000);
                a.add(reg::T1, reg::T1, reg::T2);
                // addrB = addrA + 0x2000: the same set, different tags.
                a.li_u32(reg::T3, 0x2000);
                a.add(reg::T3, reg::T1, reg::T3);
                // Seed both (dirty lines): mem[addrA] = tid+1,
                // mem[addrB] = 10*(tid+1) — scattered stores, full mask.
                a.addi(reg::T4, reg::T0, 1);
                a.sw(reg::T4, 0, reg::T1);
                a.li(reg::T5, 10);
                a.mul(reg::T5, reg::T4, reg::T5);
                a.sw(reg::T5, 0, reg::T3);
                // Diverge: only even lanes gather, alternating A and B so
                // the direct-mapped set thrashes on every access.
                a.andi(reg::T6, reg::T0, 1);
                a.seqz(reg::T6, reg::T6);
                let skip = a.label("skip");
                a.vx_split(reg::T6, skip);
                a.lw(reg::A0, 0, reg::T1); // A: evicts B's line (dirty)
                a.lw(reg::A1, 0, reg::T3); // B: evicts A's line
                a.lw(reg::A2, 0, reg::T1); // A again: still conflicting
                a.add(reg::A0, reg::A0, reg::A1);
                a.add(reg::A0, reg::A0, reg::A2);
                a.bind(skip).expect("fresh");
                a.vx_join();
                // out[tid] = A + B + A = 12*(tid+1) for even lanes, 0 odd.
                a.slli(reg::A3, reg::T0, 2);
                a.li_u32(reg::A4, 0x9000);
                a.add(reg::A3, reg::A3, reg::A4);
                a.sw(reg::A0, 0, reg::A3);
                a.vx_tmc(reg::ZERO);
            },
            &[0x9000, 0x9004, 0x9008, 0x9010, 0x901C],
        );
        assert_eq!(words, vec![12, 0, 36, 60, 0]);
        assert_eq!(finish, GOLDEN_THRASH_GATHER, "thrash-gather golden cycle drift");
    }

    /// Full-mask unit-stride streaming, 32 lanes wide: each access spans
    /// two 64-byte lines of a 1 KiB-apart block pair (2× the whole thrash
    /// L1, same sets), so the arithmetic span path feeds the batched walk
    /// a multi-line run that keeps evicting its own previous round.
    #[test]
    fn thrashing_unit_stride_identity() {
        let (finish, words) = identical_runs(
            32,
            |a| {
                a.csrr(reg::T0, vortex_isa::csrs::THREAD_ID);
                // Two streaming rounds over 1 KiB-apart blocks: store
                // tid*5+2 at 0x2_0000 + 4*tid + r*0x400, reload, sum.
                a.slli(reg::T1, reg::T0, 2);
                a.li_u32(reg::T2, 0x2_0000);
                a.add(reg::T1, reg::T1, reg::T2);
                a.li(reg::T3, 5);
                a.mul(reg::T3, reg::T0, reg::T3);
                a.addi(reg::T3, reg::T3, 2);
                a.sw(reg::T3, 0, reg::T1); // unit-stride store, round 0
                a.sw(reg::T3, 0x400, reg::T1); // unit-stride store, round 1
                a.lw(reg::T4, 0, reg::T1); // unit-stride load, round 0
                a.lw(reg::T5, 0x400, reg::T1); // unit-stride load, round 1
                a.add(reg::T4, reg::T4, reg::T5);
                a.li_u32(reg::T6, 0xA000);
                a.slli(reg::A0, reg::T0, 2);
                a.add(reg::A0, reg::A0, reg::T6);
                a.sw(reg::T4, 0, reg::A0);
                a.vx_tmc(reg::ZERO);
            },
            &[0xA000, 0xA004, 0xA01C],
        );
        assert_eq!(words, vec![4, 14, 74]);
        assert_eq!(finish, GOLDEN_THRASH_STRIDE, "thrash-stride golden cycle drift");
    }

    // Captured from the engine after it was verified bit-identical to the
    // PR 3 binary over the 180-run grid (same convention as the golden
    // table below).
    const GOLDEN_THRASH_GATHER: u64 = 281;
    const GOLDEN_THRASH_STRIDE: u64 = 162;
}

// ---------------------------------------------------------------------
// Basic-block superinstruction engine (PR 6).
//
// The programs below steer execution at the seams of the block engine:
// an indirect jump landing in the middle of a fused block (no block
// starts there, so the per-instruction fallback must take over), a
// barrier splitting a straight-line run, memory ops isolating singleton
// cells, and a dst==src dependence chain inside one block (the static
// schedule must serialise it exactly like the scoreboard). Each program
// is checked three ways on a raw device — traced vs untraced under
// fusion, and fusion-on vs fusion-off (`set_block_fusion`) — plus an
// absolute golden finish cycle.
// ---------------------------------------------------------------------

mod blocks {
    use vortex_asm::Assembler;
    use vortex_gpgpu::prelude::*;
    use vortex_isa::reg;
    use vortex_sim::{Device, NullSink, VecTraceSink};

    const BASE: u32 = 0x8000_0000;

    /// Runs `build` on a fresh 1-core device three ways — untraced fused,
    /// traced fused, untraced with fusion force-disabled — asserts every
    /// observable fingerprint agrees, and returns the finish cycle, the
    /// probed memory words, and the fused counters of the fused run.
    fn identical_runs(
        threads: usize,
        build: impl Fn(&mut Assembler),
        probe: &[u32],
    ) -> (u64, Vec<u32>, u64, u64) {
        #[allow(clippy::type_complexity)]
        let run = |traced: bool, fuse: bool| -> (u64, u64, u64, Vec<u32>, u64, u64) {
            let mut a = Assembler::new(BASE);
            build(&mut a);
            let program = a.assemble().expect("assembles");
            let mut device = Device::new(DeviceConfig::with_topology(1, 2, threads));
            device.set_block_fusion(fuse);
            device.load_program(&program);
            device.start_warp(0, program.entry());
            let finish = if traced {
                let mut sink = VecTraceSink::new();
                device.run(1_000_000, Some(&mut sink)).expect("runs")
            } else {
                device.run_with::<NullSink>(1_000_000, None).expect("runs")
            };
            let mem = device.memory();
            let words = probe.iter().map(|&addr| mem.read_u32(addr)).collect();
            let c = device.counters();
            (
                finish,
                c.instructions,
                c.lane_instructions,
                words,
                c.fused_instructions,
                c.fused_blocks,
            )
        };
        let fused = run(false, true);
        let traced = run(true, true);
        assert_eq!(fused, traced, "traced vs untraced drift under fusion");
        let unfused = run(false, false);
        assert_eq!(
            (fused.0, fused.1, fused.2, &fused.3),
            (unfused.0, unfused.1, unfused.2, &unfused.3),
            "fusion changed an observable outcome"
        );
        assert_eq!((unfused.4, unfused.5), (0, 0), "fusion counters moved while disabled");
        (fused.0, fused.3, fused.4, fused.5)
    }

    /// An indirect jump (`jalr`) into the middle of a fused block: block
    /// starts are static, so the landing pc has no block and the
    /// per-instruction fallback must execute the tail — skipping exactly
    /// the first two adds of the block after the call site.
    #[test]
    fn jalr_into_mid_block_falls_back() {
        let (finish, words, fused_instr, _) = identical_runs(
            4,
            |a| {
                let f = a.label("f");
                // Fusable straight-line prologue (entered at its start).
                a.li(reg::T2, 0);
                a.addi(reg::T4, reg::ZERO, 21);
                a.add(reg::T4, reg::T4, reg::T4);
                a.jal(reg::RA, f);
                // Return lands here: one straight-line block until the sw.
                a.addi(reg::T2, reg::T2, 1); // skipped (ra + 0)
                a.addi(reg::T2, reg::T2, 2); // skipped (ra + 4)
                a.addi(reg::T2, reg::T2, 4); // jalr lands here (ra + 8)
                a.addi(reg::T2, reg::T2, 8);
                a.li_u32(reg::T3, 0x1000);
                a.sw(reg::T2, 0, reg::T3);
                a.vx_tmc(reg::ZERO);
                a.bind(f).expect("fresh");
                a.jalr(reg::ZERO, reg::RA, 8); // mid-block entry
            },
            &[0x1000],
        );
        // Only the last two adds ran: 4 + 8.
        assert_eq!(words, vec![12]);
        assert!(fused_instr > 0, "straight-line tail should still fuse");
        assert_eq!(finish, GOLDEN_JALR_MID_BLOCK, "jalr mid-block golden cycle drift");
    }

    /// A barrier splits a straight-line run into separate blocks: the
    /// arithmetic on both sides fuses, the barrier itself never does.
    #[test]
    fn barrier_splits_blocks() {
        let (finish, words, fused_instr, fused_blocks) = identical_runs(
            4,
            |a| {
                a.csrr(reg::T0, vortex_isa::csrs::THREAD_ID);
                a.addi(reg::T1, reg::T0, 3);
                a.slli(reg::T2, reg::T1, 1);
                a.add(reg::T2, reg::T2, reg::T0);
                // One-party barrier: releases immediately, but cuts the
                // block structure around itself.
                a.li(reg::T3, 0);
                a.li(reg::T4, 1);
                a.vx_bar(reg::T3, reg::T4);
                a.xori(reg::T5, reg::T2, 5);
                a.sub(reg::T5, reg::T5, reg::T0);
                a.add(reg::T5, reg::T5, reg::T2);
                a.slli(reg::T6, reg::T0, 2);
                a.li_u32(reg::A0, 0x2000);
                a.add(reg::T6, reg::T6, reg::A0);
                a.sw(reg::T5, 0, reg::T6);
                a.vx_tmc(reg::ZERO);
            },
            &[0x2000, 0x2004, 0x2008, 0x200C],
        );
        // tid: a = 2*(tid+3)+tid; out = (a^5) - tid + a.
        let expect: Vec<u32> =
            (0..4u32).map(|t| ((3 * t + 6) ^ 5).wrapping_sub(t) + (3 * t + 6)).collect();
        assert_eq!(words, expect);
        assert!(fused_blocks >= 2, "both sides of the barrier should fuse");
        assert!(fused_instr >= 6, "arithmetic around the barrier should fuse");
        assert_eq!(finish, GOLDEN_BARRIER_SPLIT, "barrier-split golden cycle drift");
    }

    /// Memory ops are singleton cells: an alu/load/alu/store sandwich
    /// fuses only the arithmetic runs, and the loads/stores go down the
    /// ordinary memory pipeline unchanged.
    #[test]
    fn memory_ops_stay_singleton_blocks() {
        let (finish, words, fused_instr, _) = identical_runs(
            8,
            |a| {
                a.csrr(reg::T0, vortex_isa::csrs::THREAD_ID);
                a.slli(reg::T1, reg::T0, 2);
                a.li_u32(reg::T2, 0x3000);
                a.add(reg::T1, reg::T1, reg::T2);
                a.addi(reg::T3, reg::T0, 7);
                a.sw(reg::T3, 0, reg::T1); // singleton cell
                a.lw(reg::T4, 0, reg::T1); // singleton cell
                a.slli(reg::T4, reg::T4, 1);
                a.addi(reg::T4, reg::T4, 1);
                a.sw(reg::T4, 0x100, reg::T1); // singleton cell
                a.vx_tmc(reg::ZERO);
            },
            &[0x3100, 0x3104, 0x311C],
        );
        // out = 2*(tid+7)+1.
        assert_eq!(words, vec![15, 17, 29]);
        assert!(fused_instr > 0, "the arithmetic runs should fuse");
        assert_eq!(finish, GOLDEN_MEM_SINGLETON, "mem-singleton golden cycle drift");
    }

    /// A dst==src dependence chain inside one block: the static schedule
    /// must serialise each step on the previous write-back exactly as the
    /// scoreboard would, including the multiply latency in the middle.
    #[test]
    fn dst_eq_src_chain_schedules_exactly() {
        let (finish, words, fused_instr, fused_blocks) = identical_runs(
            4,
            |a| {
                a.csrr(reg::T0, vortex_isa::csrs::THREAD_ID);
                a.addi(reg::T1, reg::T0, 2);
                a.add(reg::T1, reg::T1, reg::T1); // t1 = 2*(tid+2), dst==src1==src2
                a.mul(reg::T1, reg::T1, reg::T1); // t1 = t1^2, long latency
                a.addi(reg::T1, reg::T1, 1); // reads the mul result
                a.slli(reg::T2, reg::T0, 2);
                a.li_u32(reg::T3, 0x4000);
                a.add(reg::T2, reg::T2, reg::T3);
                a.sw(reg::T1, 0, reg::T2);
                a.vx_tmc(reg::ZERO);
            },
            &[0x4000, 0x4004, 0x4008, 0x400C],
        );
        // out = (2*(tid+2))^2 + 1.
        assert_eq!(words, vec![17, 37, 65, 101]);
        assert!(fused_blocks >= 1 && fused_instr >= 5, "the chain should fuse as one block");
        assert_eq!(finish, GOLDEN_DST_SRC_CHAIN, "dst==src chain golden cycle drift");
    }

    // Captured from the engine after it was verified bit-identical to the
    // PR 5 binary over the 240-run grid (same convention as the golden
    // tables above).
    const GOLDEN_JALR_MID_BLOCK: u64 = 134;
    const GOLDEN_BARRIER_SPLIT: u64 = 138;
    const GOLDEN_MEM_SINGLETON: u64 = 132;
    const GOLDEN_DST_SRC_CHAIN: u64 = 132;
}

// ---------------------------------------------------------------------
// Clustered O(activity) device (PR 9).
//
// Core clustering is a host-side scheduling/accounting structure: the
// scan order of the device run loop (ascending core id, ascending-id
// tie-break) is identical for every `cores_per_cluster`, so regrouping
// the same cores must not move a cycle or a counter.
// ---------------------------------------------------------------------

/// Every paper kernel, run flat and under clusterings that exercise an
/// even split, a partial tail cluster, and one oversized cluster — the
/// full cycle/counter/memory fingerprints must be identical.
#[test]
fn clustered_layouts_are_bit_identical_to_flat() {
    let grid: &[(&str, &[usize])] = &[("8c8w8t", &[2, 3, 64]), ("3c5w7t", &[2])];
    for &(topo, cpcs) in grid {
        let flat: DeviceConfig = topo.parse().unwrap();
        for mut kernel in kernels() {
            let reference = run_kernel(kernel.as_mut(), &flat, LwsPolicy::Auto)
                .unwrap_or_else(|e| panic!("{} {topo}: {e}", kernel.name()));
            let reference = fingerprint(&reference);
            for &cpc in cpcs {
                let clustered = flat.with_clustering(cpc);
                let outcome = run_kernel(kernel.as_mut(), &clustered, LwsPolicy::Auto)
                    .unwrap_or_else(|e| panic!("{} {topo} cpc={cpc}: {e}", kernel.name()));
                assert_eq!(
                    fingerprint(&outcome),
                    reference,
                    "{} on {topo}: clustering {cpc} cores per cluster moved timing",
                    kernel.name()
                );
            }
        }
    }
}

/// The big-topology path is pinned absolutely: a 256-core run finishes at
/// the same golden cycle flat and clustered, so drift in the O(activity)
/// scheduler at scale fails loudly even if both layouts drift together.
#[test]
fn big_topology_256_core_golden() {
    let mut fingerprints = Vec::new();
    for topo in ["256c4w8t", "256c4w8tx16"] {
        let config: DeviceConfig = topo.parse().unwrap();
        let mut kernel = VecAdd::new(4096);
        let outcome = run_kernel(&mut kernel, &config, LwsPolicy::Fixed32)
            .unwrap_or_else(|e| panic!("{topo}: {e}"));
        assert_eq!(outcome.cycles, GOLDEN_256C_VECADD, "{topo}: big-topology golden cycle drift");
        fingerprints.push(fingerprint(&outcome));
    }
    assert_eq!(fingerprints[0], fingerprints[1], "flat vs clustered 256-core drift");
}

// Captured from the PR 9 engine after it was verified bit-identical to
// the PR 8 binary over the extended 240-run cycle_dump grid.
const GOLDEN_256C_VECADD: u64 = 1391;

/// Absolute golden finish cycles for representative runs. These values
/// were captured from the seed simulator (pre-optimisation) and verified
/// bit-identical against the optimised engine; any future change that
/// shifts them is a timing-semantics change and must be deliberate.
#[test]
fn golden_finish_cycles() {
    let golden: &[(&str, &str, LwsPolicy, u64)] = &[
        ("vecadd", "1c2w4t", LwsPolicy::Naive1, GOLDEN_VECADD_NAIVE),
        ("vecadd", "1c2w4t", LwsPolicy::Auto, GOLDEN_VECADD_AUTO),
        ("gauss", "2c4w8t", LwsPolicy::Auto, GOLDEN_GAUSS_AUTO),
    ];
    for &(name, topo, policy, expected) in golden {
        let config: DeviceConfig = topo.parse().unwrap();
        let mut kernel: Box<dyn Kernel> = match name {
            "vecadd" => Box::new(VecAdd::new(512)),
            "gauss" => Box::new(Gauss::new(16, 5)),
            other => panic!("unknown golden kernel {other}"),
        };
        let outcome = run_kernel(kernel.as_mut(), &config, policy).unwrap();
        assert_eq!(outcome.cycles, expected, "{name} on {topo} under {policy}: golden cycle drift");
    }
}

// Captured once from the verified-identical engines (see test above).
const GOLDEN_VECADD_NAIVE: u64 = 12846;
const GOLDEN_VECADD_AUTO: u64 = 2574;
const GOLDEN_GAUSS_AUTO: u64 = 1088;
