//! Randomised tests over the mapping and tuning invariants, plus
//! randomised end-to-end correctness of the full stack. Seeds are fixed
//! so failures reproduce exactly.

use vortex_gpgpu::prelude::*;
use vortex_rng::Rng;

fn arb_topology(rng: &mut Rng) -> DeviceConfig {
    DeviceConfig::with_topology(
        rng.gen_range_usize(1, 9),
        rng.gen_range_usize(1, 9),
        rng.gen_range_usize(1, 17),
    )
}

/// Every task id in 0..⌈gws/lws⌉ is covered by exactly one core range.
#[test]
fn mapping_covers_all_tasks() {
    let mut rng = Rng::seed_from_u64(0x4AB01);
    for _ in 0..256 {
        let gws = rng.gen_range_u32(1, 100_000);
        let lws = rng.gen_range_u32(1, 5_000);
        let config = arb_topology(&mut rng);
        let plan = WorkMapping::plan(gws, lws, &config);
        assert!(plan.verify_coverage(), "gws={gws} lws={lws} {config}");
        let total: u32 = plan.core_ranges().iter().map(|r| r.task_end - r.task_base).sum();
        assert_eq!(total, plan.n_tasks());
        assert!(plan.active_cores() <= config.cores);
    }
}

/// Eq. 1 always produces a legal lws, and the scenario classification is
/// consistent with it.
#[test]
fn eq1_is_always_legal() {
    let mut rng = Rng::seed_from_u64(0x4AB02);
    for _ in 0..256 {
        let gws = rng.gen_range_u32(1, 1_000_000);
        let config = arb_topology(&mut rng);
        let lws = LwsPolicy::Auto.lws_for(gws, &config);
        assert!(lws >= 1);
        assert!(lws <= gws);
        let hp = config.hardware_parallelism();
        if hp > u64::from(gws) {
            assert_eq!(lws, 1, "hp > gws must resolve to the naive mapping");
        }
        // Floor division: the task count always reaches the hardware.
        let n_tasks = u64::from(gws.div_ceil(lws));
        assert!(n_tasks >= hp.min(u64::from(gws)));
    }
}

/// Rounds and tail utilisation are consistent.
#[test]
fn rounds_match_slot_arithmetic() {
    let mut rng = Rng::seed_from_u64(0x4AB03);
    for _ in 0..256 {
        let gws = rng.gen_range_u32(1, 50_000);
        let lws = rng.gen_range_u32(1, 2_000);
        let config = arb_topology(&mut rng);
        let plan = WorkMapping::plan(gws, lws, &config);
        let slots = (config.warps * config.threads) as u32;
        for range in plan.core_ranges() {
            let rounds = (range.task_end - range.task_base).div_ceil(slots);
            assert!(rounds <= plan.rounds());
        }
        let util = plan.tail_utilization();
        assert!((0.0..=1.0).contains(&util));
    }
}

/// The full stack computes correct results for arbitrary sizes, mappings
/// and (small) topologies — verification happens inside `run_kernel`
/// against the host reference.
#[test]
fn randomized_end_to_end_correctness() {
    let mut rng = Rng::seed_from_u64(0x4AB04);
    for case in 0..24 {
        let gws = rng.gen_range_u32(1, 300);
        let lws = rng.gen_range_u32(1, 64);
        let config = DeviceConfig::with_topology(
            rng.gen_range_usize(1, 4),
            rng.gen_range_usize(1, 4),
            rng.gen_range_usize(1, 8),
        );
        let mut kernel = VecAdd::new(gws);
        run_kernel(&mut kernel, &config, LwsPolicy::Explicit(lws))
            .unwrap_or_else(|e| panic!("case {case}: gws={gws} lws={lws} {config}: {e}"));
    }
}

/// The auto policy is deterministic: same inputs, same lws, same cycles.
#[test]
fn auto_policy_is_deterministic() {
    let mut rng = Rng::seed_from_u64(0x4AB05);
    for case in 0..24 {
        let gws = rng.gen_range_u32(1, 300);
        let config = DeviceConfig::with_topology(
            rng.gen_range_usize(1, 4),
            rng.gen_range_usize(1, 4),
            rng.gen_range_usize(1, 8),
        );
        let run = || {
            let mut kernel = Relu::new(gws);
            run_kernel(&mut kernel, &config, LwsPolicy::Auto).map(|o| (o.reports[0].lws, o.cycles))
        };
        let a = run().unwrap_or_else(|e| panic!("case {case}: {e}"));
        let b = run().unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(a, b, "case {case}");
    }
}
