//! Property-based tests over the mapping and tuning invariants, plus
//! randomised end-to-end correctness of the full stack.

use proptest::prelude::*;
use vortex_gpgpu::prelude::*;

fn arb_topology() -> impl Strategy<Value = DeviceConfig> {
    (1usize..=8, 1usize..=8, 1usize..=16)
        .prop_map(|(c, w, t)| DeviceConfig::with_topology(c, w, t))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every task id in 0..⌈gws/lws⌉ is covered by exactly one core range.
    #[test]
    fn mapping_covers_all_tasks(
        gws in 1u32..100_000,
        lws in 1u32..5_000,
        config in arb_topology(),
    ) {
        let plan = WorkMapping::plan(gws, lws, &config);
        prop_assert!(plan.verify_coverage());
        let total: u32 = plan.core_ranges().iter().map(|r| r.task_end - r.task_base).sum();
        prop_assert_eq!(total, plan.n_tasks());
        prop_assert!(plan.active_cores() <= config.cores);
    }

    /// Eq. 1 always produces a legal lws, and the scenario classification
    /// is consistent with it.
    #[test]
    fn eq1_is_always_legal(
        gws in 1u32..1_000_000,
        config in arb_topology(),
    ) {
        let lws = LwsPolicy::Auto.lws_for(gws, &config);
        prop_assert!(lws >= 1);
        prop_assert!(lws <= gws);
        let hp = config.hardware_parallelism();
        if hp > u64::from(gws) {
            prop_assert_eq!(lws, 1, "hp > gws must resolve to the naive mapping");
        }
        // Floor division: the task count always reaches the hardware.
        let n_tasks = u64::from(gws.div_ceil(lws));
        prop_assert!(n_tasks >= hp.min(u64::from(gws)));
    }

    /// Rounds and tail utilisation are consistent.
    #[test]
    fn rounds_match_slot_arithmetic(
        gws in 1u32..50_000,
        lws in 1u32..2_000,
        config in arb_topology(),
    ) {
        let plan = WorkMapping::plan(gws, lws, &config);
        let slots = (config.warps * config.threads) as u32;
        for range in plan.core_ranges() {
            let rounds = (range.task_end - range.task_base).div_ceil(slots);
            prop_assert!(rounds <= plan.rounds());
        }
        let util = plan.tail_utilization();
        prop_assert!((0.0..=1.0).contains(&util));
    }
}

proptest! {
    // End-to-end device runs are expensive; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full stack computes correct results for arbitrary sizes,
    /// mappings and (small) topologies — verification happens inside
    /// `run_kernel` against the host reference.
    #[test]
    fn randomized_end_to_end_correctness(
        gws in 1u32..300,
        lws in 1u32..64,
        cores in 1usize..4,
        warps in 1usize..4,
        threads in 1usize..8,
    ) {
        let config = DeviceConfig::with_topology(cores, warps, threads);
        let mut kernel = VecAdd::new(gws);
        run_kernel(&mut kernel, &config, LwsPolicy::Explicit(lws))
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    /// The auto policy is deterministic: same inputs, same lws, same cycles.
    #[test]
    fn auto_policy_is_deterministic(
        gws in 1u32..300,
        cores in 1usize..4,
        warps in 1usize..4,
        threads in 1usize..8,
    ) {
        let config = DeviceConfig::with_topology(cores, warps, threads);
        let run = || {
            let mut kernel = Relu::new(gws);
            run_kernel(&mut kernel, &config, LwsPolicy::Auto)
                .map(|o| (o.reports[0].lws, o.cycles))
        };
        let a = run().map_err(|e| TestCaseError::fail(format!("{e}")))?;
        let b = run().map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(a, b);
    }
}
